//! The static communication-network topology `G = (V_G, E_G)`.
//!
//! Machines are indexed `0..n`; links are undirected, simple edges stored in
//! CSR adjacency form for cache-friendly traversal. The cluster layer builds
//! support trees and inter-cluster link tables on top of this graph.

use crate::delta::{DeltaBatch, DeltaEffect};
use crate::error::NetError;
use crate::par::{
    for_each_shard, kway_merge_dedup, map_reduce_on, ParallelConfig, SendPtr, ShardPlan, WorkerPool,
};
use std::collections::VecDeque;

/// Identifier of a machine (a vertex of the communication network `G`).
pub type MachineId = usize;

/// An undirected simple communication network.
///
/// Equality is structural (machine count + canonical edge list), so the
/// cluster layer's differential suites can compare whole built instances.
///
/// # Example
///
/// ```
/// use cgc_net::CommGraph;
/// let g = CommGraph::path(5);
/// assert_eq!(g.n_machines(), 5);
/// assert_eq!(g.n_links(), 4);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommGraph {
    n: usize,
    /// CSR offsets: `adj[offsets[v]..offsets[v+1]]` are the neighbors of `v`.
    offsets: Vec<usize>,
    adj: Vec<MachineId>,
    /// Canonical edge list with `u < v`.
    edges: Vec<(MachineId, MachineId)>,
}

impl CommGraph {
    /// Builds a graph on `n` machines from an undirected edge list.
    ///
    /// Duplicate edges are collapsed; orientation is normalized.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::MachineOutOfRange`] if an endpoint is `>= n`,
    /// [`NetError::SelfLoop`] on a `(u, u)` edge and [`NetError::EmptyGraph`]
    /// when `n == 0`.
    pub fn from_edges(n: usize, edges: &[(MachineId, MachineId)]) -> Result<Self, NetError> {
        Self::from_edges_with(n, edges, &ParallelConfig::serial())
    }

    /// [`Self::from_edges`] with validation, orientation normalization,
    /// sort/dedup and CSR assembly sharded over `par`'s threads
    /// (dispatched on the process-global [`WorkerPool`]). Each shard
    /// canonicalizes and sorts a contiguous range of the input, the sorted
    /// runs merge through the deterministic fixed-order k-way merge, and
    /// the CSR fills by a sharded counting sort — the result (and, on
    /// invalid input, the reported error: always the earliest bad edge in
    /// input order) is **byte-identical** to the serial path at any thread
    /// count.
    ///
    /// # Errors
    ///
    /// As [`Self::from_edges`].
    pub fn from_edges_with(
        n: usize,
        edges: &[(MachineId, MachineId)],
        par: &ParallelConfig,
    ) -> Result<Self, NetError> {
        Self::from_edge_runs_with(n, &[edges], par)
    }

    /// The streaming entry of the edge pipeline: builds the graph from
    /// *per-shard edge runs* — the output shape of the sharded generators
    /// in `cgc_graphs` — without first concatenating them into one edge
    /// `Vec`. The logical input is the concatenation of the runs in order;
    /// semantics (dedup, normalization, error reporting) are exactly
    /// [`Self::from_edges`] on that concatenation, and the output is
    /// independent of both the run partition and the thread count.
    ///
    /// # Errors
    ///
    /// As [`Self::from_edges`].
    pub fn from_edge_runs_with(
        n: usize,
        runs: &[&[(MachineId, MachineId)]],
        par: &ParallelConfig,
    ) -> Result<Self, NetError> {
        if n == 0 {
            return Err(NetError::EmptyGraph);
        }
        // Run-start prefix so a shard of the concatenated index space can
        // locate its slice(s) without copying the input.
        let mut starts = Vec::with_capacity(runs.len() + 1);
        starts.push(0usize);
        for r in runs {
            starts.push(starts.last().unwrap() + r.len());
        }
        let total = *starts.last().unwrap();
        let plan = ShardPlan::even(total, par.threads());
        let pool = WorkerPool::global(par.threads());
        let pool = pool.as_deref();
        // Phase 1: validate + canonicalize + sort/dedup, shard-locally.
        // Shards are contiguous ascending input ranges merged in shard
        // order and each shard stops at its first bad edge, so the merged
        // error is the earliest bad edge in input order — exactly the
        // serial sweep's report.
        let sorted_runs = map_reduce_on(
            &plan,
            pool,
            |range| -> Result<Vec<Vec<(usize, usize)>>, NetError> {
                let mut canon: Vec<(usize, usize)> = Vec::with_capacity(range.len());
                let mut r = match starts.binary_search(&range.start) {
                    Ok(i) => i,
                    Err(i) => i - 1,
                };
                let mut off = range.start - starts[r];
                let mut remaining = range.len();
                while remaining > 0 {
                    let run = runs[r];
                    let take = remaining.min(run.len() - off);
                    for &(u, v) in &run[off..off + take] {
                        if u >= n {
                            return Err(NetError::MachineOutOfRange { machine: u, n });
                        }
                        if v >= n {
                            return Err(NetError::MachineOutOfRange { machine: v, n });
                        }
                        if u == v {
                            return Err(NetError::SelfLoop { machine: u });
                        }
                        canon.push((u.min(v), u.max(v)));
                    }
                    remaining -= take;
                    r += 1;
                    off = 0;
                }
                canon.sort_unstable();
                canon.dedup();
                Ok(vec![canon])
            },
            |acc, part| {
                if let Ok(lists) = acc {
                    match part {
                        Ok(more) => lists.extend(more),
                        Err(e) => *acc = Err(e),
                    }
                }
            },
        )?;
        // Phase 2: deterministic fixed-order k-way merge — the unique
        // sorted dedup of the union, independent of the partition.
        let canon = kway_merge_dedup(sorted_runs);
        Ok(Self::from_canonical_edges(n, canon, par, pool))
    }

    /// CSR assembly from the canonical (sorted, deduplicated, `u < v`)
    /// edge list by counting sort — sharded over contiguous edge ranges
    /// when `par` is parallel. Row contents are identical either way: the
    /// serial cursor walk appends row entries in edge order, and each
    /// shard's cursors start exactly where the preceding shards' counts
    /// end.
    fn from_canonical_edges(
        n: usize,
        canon: Vec<(usize, usize)>,
        par: &ParallelConfig,
        pool: Option<&WorkerPool>,
    ) -> Self {
        let m = canon.len();
        let plan = ShardPlan::even(m, par.threads());
        let shards = plan.n_shards();
        if shards <= 1 {
            let mut deg = vec![0usize; n];
            for &(u, v) in &canon {
                deg[u] += 1;
                deg[v] += 1;
            }
            let mut offsets = Vec::with_capacity(n + 1);
            offsets.push(0usize);
            for d in &deg {
                offsets.push(offsets.last().unwrap() + d);
            }
            let mut adj = vec![0usize; offsets[n]];
            let mut cursor = offsets[..n].to_vec();
            for &(u, v) in &canon {
                adj[cursor[u]] = v;
                cursor[u] += 1;
                adj[cursor[v]] = u;
                cursor[v] += 1;
            }
            return CommGraph {
                n,
                offsets,
                adj,
                edges: canon,
            };
        }
        // Per-shard incidence histograms (how many entries shard `s`
        // appends to each row), collected in shard order.
        let canon_ref = &canon;
        let hists: Vec<Vec<u32>> = map_reduce_on(
            &plan,
            pool,
            |range| {
                let mut h = vec![0u32; n];
                for &(u, v) in &canon_ref[range] {
                    h[u] += 1;
                    h[v] += 1;
                }
                vec![h]
            },
            |acc: &mut Vec<Vec<u32>>, part| acc.extend(part),
        );
        // Row offsets plus each shard's starting cursor per row: shard
        // `s` writes row `v`'s entries at
        // `offsets[v] + Σ_{t<s} hists[t][v] ..` — the exact positions the
        // serial edge-order walk would have used.
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            let deg: usize = hists.iter().map(|h| h[v] as usize).sum();
            offsets[v + 1] = offsets[v] + deg;
        }
        let mut cursors: Vec<Vec<usize>> = vec![Vec::new(); shards];
        {
            let mut acc: Vec<usize> = offsets[..n].to_vec();
            for (s, hist) in hists.iter().enumerate() {
                cursors[s] = acc.clone();
                if s + 1 < shards {
                    for (a, &h) in acc.iter_mut().zip(hist) {
                        *a += h as usize;
                    }
                }
            }
        }
        let mut adj = vec![0usize; offsets[n]];
        {
            let adj_base = SendPtr::new(adj.as_mut_ptr());
            let cur_base = SendPtr::new(cursors.as_mut_ptr());
            for_each_shard(pool, shards, &|s| {
                // SAFETY: shard `s` owns `cursors[s]` exclusively, and the
                // cursor positions it claims in `adj` are disjoint from
                // every other shard's (each position belongs to exactly one
                // shard's count window in its row).
                let cur = unsafe { &mut *cur_base.get().add(s) };
                for &(u, v) in &canon_ref[plan.range(s)] {
                    unsafe {
                        *adj_base.get().add(cur[u]) = v;
                        cur[u] += 1;
                        *adj_base.get().add(cur[v]) = u;
                        cur[v] += 1;
                    }
                }
            });
        }
        CommGraph {
            n,
            offsets,
            adj,
            edges: canon,
        }
    }

    /// Applies an edge delta batch in place, serially. See
    /// [`Self::apply_delta_with`].
    ///
    /// # Errors
    ///
    /// As [`Self::apply_delta_with`].
    pub fn apply_delta(&mut self, batch: &DeltaBatch) -> Result<DeltaEffect, NetError> {
        self.apply_delta_with(batch, &ParallelConfig::serial())
    }

    /// Applies an edge delta batch in place: the edge set becomes
    /// `(E \ deletes) ∪ inserts` and the CSR is patched incrementally —
    /// untouched rows are copied wholesale, touched rows re-merged — so
    /// the result is byte-identical ([`PartialEq`]) to
    /// [`Self::from_edges`] on the mutated edge set at any thread count.
    /// Returns the *effective* change (no-op inserts/deletes filtered
    /// out); on error the graph is left unchanged.
    ///
    /// # Errors
    ///
    /// [`NetError::MachineOutOfRange`] if the batch names a machine
    /// `>= n_machines()` (batches built for a smaller machine count apply
    /// cleanly).
    pub fn apply_delta_with(
        &mut self,
        batch: &DeltaBatch,
        par: &ParallelConfig,
    ) -> Result<DeltaEffect, NetError> {
        let (next, effect) = self.with_delta_with(batch, par)?;
        *self = next;
        Ok(effect)
    }

    /// [`Self::apply_delta_with`] without consuming the receiver: builds
    /// the mutated graph alongside the old one and returns both the new
    /// graph and the effective change. The cluster layer uses this for
    /// compute-then-commit atomicity.
    ///
    /// # Errors
    ///
    /// As [`Self::apply_delta_with`].
    pub fn with_delta_with(
        &self,
        batch: &DeltaBatch,
        par: &ParallelConfig,
    ) -> Result<(Self, DeltaEffect), NetError> {
        let n = self.n;
        // A batch validated against a larger machine count may name
        // machines this graph does not have; both lists are canonical
        // (u < v), so checking the high endpoint suffices.
        if batch.n_machines() > n {
            for &(u, v) in batch.inserts().iter().chain(batch.deletes()) {
                if v >= n {
                    let machine = if u >= n { u } else { v };
                    return Err(NetError::MachineOutOfRange { machine, n });
                }
            }
        }
        // Effective sets: inserts that are absent, deletes that are
        // present (binary search per edge in the CSR row). Filtering a
        // sorted list keeps it sorted.
        let inserted: Vec<(usize, usize)> = batch
            .inserts()
            .iter()
            .copied()
            .filter(|&(u, v)| !self.has_link(u, v))
            .collect();
        let deleted: Vec<(usize, usize)> = batch
            .deletes()
            .iter()
            .copied()
            .filter(|&(u, v)| self.has_link(u, v))
            .collect();
        let effect = DeltaEffect { inserted, deleted };
        if effect.is_noop() {
            return Ok((self.clone(), effect));
        }
        let next = self.patched(&effect, par);
        Ok((next, effect))
    }

    /// Rebuilds the canonical edge list and CSR for `(E \ deleted) ∪
    /// inserted`, given the *effective* sets (sorted, canonical, inserts
    /// disjoint from `E`, deletes a subset of `E`). Rows are filled in a
    /// sharded pass balanced by new-row mass; a CSR row is ascending (all
    /// lower neighbors then all higher, each sorted), so patching a
    /// touched row is one linear sorted merge and the output is exactly
    /// what [`Self::from_canonical_edges`] would produce.
    fn patched(&self, effect: &DeltaEffect, par: &ParallelConfig) -> Self {
        let n = self.n;
        // New canonical edge list: linear three-pointer merge. Effective
        // inserts are disjoint from E, so strict `<` interleaves them.
        let mut edges =
            Vec::with_capacity(self.edges.len() + effect.inserted.len() - effect.deleted.len());
        {
            let (mut ii, mut di) = (0usize, 0usize);
            for &e in &self.edges {
                while ii < effect.inserted.len() && effect.inserted[ii] < e {
                    edges.push(effect.inserted[ii]);
                    ii += 1;
                }
                if di < effect.deleted.len() && effect.deleted[di] == e {
                    di += 1;
                    continue;
                }
                edges.push(e);
            }
            edges.extend_from_slice(&effect.inserted[ii..]);
        }
        // Directed patch pairs grouped by row: (row, neighbor) for both
        // endpoints of every changed edge, sorted so each row's additions
        // and removals are contiguous ascending runs.
        let mut ins_pairs = Vec::with_capacity(2 * effect.inserted.len());
        for &(u, v) in &effect.inserted {
            ins_pairs.push((u, v));
            ins_pairs.push((v, u));
        }
        ins_pairs.sort_unstable();
        let mut del_pairs = Vec::with_capacity(2 * effect.deleted.len());
        for &(u, v) in &effect.deleted {
            del_pairs.push((u, v));
            del_pairs.push((v, u));
        }
        del_pairs.sort_unstable();
        let (offsets, adj) =
            crate::par::patch_csr_rows(&self.offsets, &self.adj, &ins_pairs, &del_pairs, par);
        CommGraph {
            n,
            offsets,
            adj,
            edges,
        }
    }

    /// A path `0 - 1 - ... - (n-1)` — CSR built directly (the edges are
    /// canonical by construction, so no validation pass or sort runs).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn path(n: usize) -> Self {
        assert!(n > 0, "path needs at least one machine");
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(2 * edges.len());
        offsets.push(0);
        for v in 0..n {
            if v > 0 {
                adj.push(v - 1);
            }
            if v + 1 < n {
                adj.push(v + 1);
            }
            offsets.push(adj.len());
        }
        CommGraph {
            n,
            offsets,
            adj,
            edges,
        }
    }

    /// A star with center `0` and leaves `1..n` — CSR built directly.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn star(n: usize) -> Self {
        assert!(n > 0, "star needs at least one machine");
        let edges: Vec<_> = (1..n).map(|i| (0, i)).collect();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(2 * edges.len());
        offsets.push(0);
        adj.extend(1..n);
        offsets.push(adj.len());
        for _v in 1..n {
            adj.push(0);
            offsets.push(adj.len());
        }
        CommGraph {
            n,
            offsets,
            adj,
            edges,
        }
    }

    /// The complete graph on `n` machines — CSR built directly.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn complete(n: usize) -> Self {
        assert!(n > 0, "complete graph needs at least one machine");
        let mut edges = Vec::with_capacity(n * (n - 1) / 2);
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v));
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(n * (n - 1));
        offsets.push(0);
        for v in 0..n {
            adj.extend((0..n).filter(|&w| w != v));
            offsets.push(adj.len());
        }
        CommGraph {
            n,
            offsets,
            adj,
            edges,
        }
    }

    /// Number of machines.
    #[inline]
    pub fn n_machines(&self) -> usize {
        self.n
    }

    /// Number of links.
    #[inline]
    pub fn n_links(&self) -> usize {
        self.edges.len()
    }

    /// Approximate heap footprint in bytes (element counts × element
    /// sizes; capacity slack and allocator overhead are ignored, so the
    /// figure is deterministic for a given graph). Used by cache byte
    /// budgets.
    pub fn approx_heap_bytes(&self) -> usize {
        std::mem::size_of_val(&self.offsets[..])
            + std::mem::size_of_val(&self.adj[..])
            + std::mem::size_of_val(&self.edges[..])
    }

    /// Degree of machine `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: MachineId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Neighbors of machine `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: MachineId) -> &[MachineId] {
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Canonicalized (`u < v`) edge list.
    #[inline]
    pub fn edges(&self) -> &[(MachineId, MachineId)] {
        &self.edges
    }

    /// Whether the link `{u, v}` exists (binary search in CSR row).
    pub fn has_link(&self, u: MachineId, v: MachineId) -> bool {
        if u >= self.n || v >= self.n {
            return false;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// BFS distances from `src`; unreachable machines get `usize::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn bfs_distances(&self, src: MachineId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        let mut q = VecDeque::new();
        dist[src] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            for &w in self.neighbors(u) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    q.push_back(w);
                }
            }
        }
        dist
    }

    /// BFS restricted to a machine subset. Returns `(parent, depth)` maps
    /// over the subset (indexed by machine id; machines outside the subset
    /// keep `usize::MAX` depth and `None` parent).
    ///
    /// Used to build support trees inside clusters. Loops that BFS many
    /// subsets of one graph should prefer
    /// [`Self::bfs_tree_within_scratch`], which reuses the `O(n)` maps
    /// instead of allocating them per call.
    pub fn bfs_tree_within(
        &self,
        src: MachineId,
        in_subset: &[bool],
    ) -> (Vec<Option<MachineId>>, Vec<usize>) {
        let mut scratch = BfsScratch::default();
        self.bfs_tree_within_scratch(src, in_subset, &mut scratch);
        (scratch.parent, scratch.depth)
    }

    /// [`Self::bfs_tree_within`] into a reusable [`BfsScratch`]: the
    /// `O(n)` parent/depth maps are (re)sized once and the BFS touches
    /// only subset entries, so a loop over many small subsets pays
    /// `O(subset + internal edges)` per call instead of `O(n)` — the win
    /// that makes per-cluster support-tree construction shardable and
    /// cheap. After reading the results the caller **must** call
    /// [`BfsScratch::reset`] with the subset's machines before reusing the
    /// scratch.
    ///
    /// The visit order (CSR neighbor order per machine) is exactly
    /// [`Self::bfs_tree_within`]'s — the two produce identical trees.
    pub fn bfs_tree_within_scratch(
        &self,
        src: MachineId,
        in_subset: &[bool],
        scratch: &mut BfsScratch,
    ) {
        debug_assert!(in_subset.len() == self.n);
        scratch.ensure(self.n);
        if !in_subset[src] {
            return;
        }
        scratch.depth[src] = 0;
        scratch.queue.push_back(src);
        while let Some(u) = scratch.queue.pop_front() {
            let du = scratch.depth[u];
            for &w in self.neighbors(u) {
                if in_subset[w] && scratch.depth[w] == usize::MAX {
                    scratch.depth[w] = du + 1;
                    scratch.parent[w] = Some(u);
                    scratch.queue.push_back(w);
                }
            }
        }
    }

    /// Whether the whole graph is connected.
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let dist = self.bfs_distances(0);
        dist.iter().all(|&d| d != usize::MAX)
    }

    /// Maximum degree over all machines.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }
}

/// Reusable workspace for [`CommGraph::bfs_tree_within_scratch`]: the
/// full-size parent/depth maps plus the BFS queue, sized lazily and reset
/// sparsely (only the entries a BFS touched) so repeated subset BFS over
/// one graph never re-allocates or re-clears `O(n)` state.
#[derive(Debug, Default)]
pub struct BfsScratch {
    parent: Vec<Option<MachineId>>,
    depth: Vec<usize>,
    queue: VecDeque<MachineId>,
}

impl BfsScratch {
    /// Fresh scratch (sized on first use).
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        if self.depth.len() < n {
            self.parent.resize(n, None);
            self.depth.resize(n, usize::MAX);
        }
        debug_assert!(self.queue.is_empty(), "BFS drains its queue");
    }

    /// Parent of `m` in the last BFS tree (`None` for the source and for
    /// unreached machines).
    #[inline]
    pub fn parent(&self, m: MachineId) -> Option<MachineId> {
        self.parent[m]
    }

    /// Depth of `m` in the last BFS tree (`usize::MAX` when unreached).
    #[inline]
    pub fn depth(&self, m: MachineId) -> usize {
        self.depth[m]
    }

    /// Clears the entries of `machines` — exactly the set a subset BFS
    /// may have touched — readying the scratch for the next call.
    pub fn reset<'a>(&mut self, machines: impl IntoIterator<Item = &'a MachineId>) {
        for &m in machines {
            self.parent[m] = None;
            self.depth[m] = usize::MAX;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups_and_normalizes() {
        let g = CommGraph::from_edges(3, &[(0, 1), (1, 0), (2, 1)]).unwrap();
        assert_eq!(g.n_links(), 2);
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
        assert!(g.has_link(1, 0));
        assert!(!g.has_link(0, 2));
    }

    #[test]
    fn rejects_bad_edges() {
        assert!(matches!(
            CommGraph::from_edges(2, &[(0, 2)]),
            Err(NetError::MachineOutOfRange { machine: 2, n: 2 })
        ));
        assert!(matches!(
            CommGraph::from_edges(2, &[(1, 1)]),
            Err(NetError::SelfLoop { machine: 1 })
        ));
        assert!(matches!(
            CommGraph::from_edges(0, &[]),
            Err(NetError::EmptyGraph)
        ));
    }

    #[test]
    fn path_star_complete_shapes() {
        let p = CommGraph::path(6);
        assert_eq!(p.n_links(), 5);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(3), 2);

        let s = CommGraph::star(6);
        assert_eq!(s.degree(0), 5);
        assert_eq!(s.degree(5), 1);
        assert_eq!(s.max_degree(), 5);

        let k = CommGraph::complete(5);
        assert_eq!(k.n_links(), 10);
        assert!(k.is_connected());
    }

    #[test]
    fn bfs_distances_on_path() {
        let p = CommGraph::path(5);
        let d = p.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_tree_within_subset_respects_boundary() {
        // Path 0-1-2-3-4, subset {0,1,2}: machine 3,4 unreachable.
        let p = CommGraph::path(5);
        let subset = vec![true, true, true, false, false];
        let (parent, depth) = p.bfs_tree_within(0, &subset);
        assert_eq!(depth[2], 2);
        assert_eq!(parent[2], Some(1));
        assert_eq!(depth[3], usize::MAX);
        assert_eq!(parent[3], None);
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = CommGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn single_machine_graph() {
        let g = CommGraph::from_edges(1, &[]).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.n_links(), 0);
        assert_eq!(g.degree(0), 0);
    }

    /// A messy pseudo-random edge soup (duplicates, both orientations).
    fn soup(n: usize, m: usize, seed: u64) -> Vec<(usize, usize)> {
        let mut x = seed | 1;
        let mut out = Vec::with_capacity(m);
        while out.len() < m {
            x = x
                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                .wrapping_add(0x14057B7EF767814F);
            let u = (x >> 33) as usize % n;
            let v = (x >> 13) as usize % n;
            if u != v {
                out.push((u, v));
            }
        }
        out
    }

    #[test]
    fn direct_csr_shapes_equal_from_edges() {
        for n in [1usize, 2, 5, 9] {
            let path_edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
            assert_eq!(
                CommGraph::path(n),
                CommGraph::from_edges(n, &path_edges).unwrap(),
                "path({n})"
            );
            let star_edges: Vec<_> = (1..n).map(|i| (0, i)).collect();
            assert_eq!(
                CommGraph::star(n),
                CommGraph::from_edges(n, &star_edges).unwrap(),
                "star({n})"
            );
            let mut complete_edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    complete_edges.push((u, v));
                }
            }
            assert_eq!(
                CommGraph::complete(n),
                CommGraph::from_edges(n, &complete_edges).unwrap(),
                "complete({n})"
            );
        }
    }

    #[test]
    fn sharded_ingest_is_thread_count_independent() {
        let edges = soup(120, 900, 7);
        let reference = CommGraph::from_edges_with(120, &edges, &ParallelConfig::serial()).unwrap();
        for threads in [2, 4, 8] {
            let got =
                CommGraph::from_edges_with(120, &edges, &ParallelConfig::with_threads(threads))
                    .unwrap();
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn edge_runs_equal_their_concatenation() {
        let edges = soup(60, 500, 13);
        let reference = CommGraph::from_edges(60, &edges).unwrap();
        for cut in [1usize, 3, 7] {
            let runs: Vec<&[(usize, usize)]> = edges.chunks(edges.len() / cut + 1).collect();
            for threads in [1, 2, 4] {
                let got = CommGraph::from_edge_runs_with(
                    60,
                    &runs,
                    &ParallelConfig::with_threads(threads),
                )
                .unwrap();
                assert_eq!(got, reference, "cut={cut} threads={threads}");
            }
        }
    }

    type EdgeList = Vec<(usize, usize)>;

    /// Splits a canonical edge soup into a base set plus disjoint
    /// insert/delete candidate lists, pseudo-randomly but repeatably.
    fn churn_split(n: usize, m: usize, seed: u64) -> (EdgeList, EdgeList, EdgeList) {
        let mut canon: Vec<_> = soup(n, m, seed)
            .iter()
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect();
        canon.sort_unstable();
        canon.dedup();
        let mut base = Vec::new();
        let mut dels = Vec::new();
        let mut ins = Vec::new();
        for (i, e) in canon.into_iter().enumerate() {
            match i % 5 {
                0 => ins.push(e), // absent edge to insert
                1 => {
                    base.push(e);
                    dels.push(e); // present edge to delete
                }
                _ => base.push(e),
            }
        }
        (base, ins, dels)
    }

    #[test]
    fn apply_delta_matches_from_edges_on_mutated_set() {
        let (base, ins, dels) = churn_split(80, 700, 11);
        let reference_edges: Vec<_> = {
            let mut e: Vec<_> = base.iter().copied().filter(|x| !dels.contains(x)).collect();
            e.extend_from_slice(&ins);
            e
        };
        let reference = CommGraph::from_edges(80, &reference_edges).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let par = ParallelConfig::with_threads(threads);
            let mut g = CommGraph::from_edges_with(80, &base, &par).unwrap();
            let batch = DeltaBatch::new_with(80, &ins, &dels, &par).unwrap();
            let effect = g.apply_delta_with(&batch, &par).unwrap();
            assert_eq!(g, reference, "threads={threads}");
            assert_eq!(effect.inserted, ins, "threads={threads}");
            assert_eq!(effect.deleted, dels, "threads={threads}");
        }
    }

    #[test]
    fn apply_delta_filters_noop_entries() {
        let mut g = CommGraph::path(5); // edges (0,1),(1,2),(2,3),(3,4)
                                        // (0,1) already present; (0,4) absent so its delete is a no-op.
        let batch = DeltaBatch::new(5, &[(0, 1), (0, 2)], &[(0, 4), (3, 4)]).unwrap();
        let effect = g.apply_delta(&batch).unwrap();
        assert_eq!(effect.inserted, vec![(0, 2)]);
        assert_eq!(effect.deleted, vec![(3, 4)]);
        assert_eq!(
            g,
            CommGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3)]).unwrap()
        );
    }

    #[test]
    fn noop_delta_leaves_graph_bit_identical() {
        let g0 = CommGraph::path(6);
        let mut g = g0.clone();
        // Inserting existing edges and deleting absent ones changes nothing.
        let batch = DeltaBatch::new(6, &[(0, 1), (2, 3)], &[(0, 5)]).unwrap();
        let effect = g.apply_delta(&batch).unwrap();
        assert!(effect.is_noop());
        assert_eq!(g, g0);
    }

    #[test]
    fn delta_for_larger_machine_count_is_range_checked() {
        let mut g = CommGraph::path(4);
        let batch = DeltaBatch::new(10, &[(2, 7)], &[]).unwrap();
        let err = g.apply_delta(&batch).unwrap_err();
        assert_eq!(err, NetError::MachineOutOfRange { machine: 7, n: 4 });
        assert_eq!(g, CommGraph::path(4)); // untouched on error
                                           // A small-n batch applies cleanly to a bigger graph.
        let mut big = CommGraph::path(10);
        let small = DeltaBatch::new(4, &[(0, 2)], &[(1, 2)]).unwrap();
        let effect = big.apply_delta(&small).unwrap();
        assert_eq!(effect.len(), 2);
        assert!(big.has_link(0, 2) && !big.has_link(1, 2));
    }

    #[test]
    fn delta_can_empty_and_refill_a_graph() {
        let mut g = CommGraph::path(4);
        let wipe = DeltaBatch::new(4, &[], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        g.apply_delta(&wipe).unwrap();
        assert_eq!(g.n_links(), 0);
        assert_eq!(g, CommGraph::from_edges(4, &[]).unwrap());
        let refill = DeltaBatch::new(4, &[(0, 3), (1, 3)], &[]).unwrap();
        g.apply_delta(&refill).unwrap();
        assert_eq!(g, CommGraph::from_edges(4, &[(0, 3), (1, 3)]).unwrap());
    }

    #[test]
    fn sharded_ingest_reports_the_earliest_error() {
        // Two bad edges; the earliest in input order must win at every
        // thread count (shard-order merge), exactly like the serial sweep.
        let mut edges = soup(40, 300, 3);
        edges[17] = (5, 5); // self-loop, earliest
        edges[250] = (0, 99); // out of range, later
        for threads in [1, 2, 4, 8] {
            let err =
                CommGraph::from_edges_with(40, &edges, &ParallelConfig::with_threads(threads))
                    .unwrap_err();
            assert!(
                matches!(err, NetError::SelfLoop { machine: 5 }),
                "threads={threads}: {err:?}"
            );
        }
        assert!(matches!(
            CommGraph::from_edges_with(0, &[], &ParallelConfig::with_threads(2)),
            Err(NetError::EmptyGraph)
        ));
    }
}
