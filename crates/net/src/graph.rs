//! The static communication-network topology `G = (V_G, E_G)`.
//!
//! Machines are indexed `0..n`; links are undirected, simple edges stored in
//! CSR adjacency form for cache-friendly traversal. The cluster layer builds
//! support trees and inter-cluster link tables on top of this graph.

use crate::error::NetError;
use std::collections::VecDeque;

/// Identifier of a machine (a vertex of the communication network `G`).
pub type MachineId = usize;

/// An undirected simple communication network.
///
/// Equality is structural (machine count + canonical edge list), so the
/// cluster layer's differential suites can compare whole built instances.
///
/// # Example
///
/// ```
/// use cgc_net::CommGraph;
/// let g = CommGraph::path(5);
/// assert_eq!(g.n_machines(), 5);
/// assert_eq!(g.n_links(), 4);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommGraph {
    n: usize,
    /// CSR offsets: `adj[offsets[v]..offsets[v+1]]` are the neighbors of `v`.
    offsets: Vec<usize>,
    adj: Vec<MachineId>,
    /// Canonical edge list with `u < v`.
    edges: Vec<(MachineId, MachineId)>,
}

impl CommGraph {
    /// Builds a graph on `n` machines from an undirected edge list.
    ///
    /// Duplicate edges are collapsed; orientation is normalized.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::MachineOutOfRange`] if an endpoint is `>= n`,
    /// [`NetError::SelfLoop`] on a `(u, u)` edge and [`NetError::EmptyGraph`]
    /// when `n == 0`.
    pub fn from_edges(n: usize, edges: &[(MachineId, MachineId)]) -> Result<Self, NetError> {
        if n == 0 {
            return Err(NetError::EmptyGraph);
        }
        let mut canon: Vec<(usize, usize)> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            if u >= n {
                return Err(NetError::MachineOutOfRange { machine: u, n });
            }
            if v >= n {
                return Err(NetError::MachineOutOfRange { machine: v, n });
            }
            if u == v {
                return Err(NetError::SelfLoop { machine: u });
            }
            canon.push((u.min(v), u.max(v)));
        }
        canon.sort_unstable();
        canon.dedup();

        let mut deg = vec![0usize; n];
        for &(u, v) in &canon {
            deg[u] += 1;
            deg[v] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for d in &deg {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut adj = vec![0usize; offsets[n]];
        let mut cursor = offsets[..n].to_vec();
        for &(u, v) in &canon {
            adj[cursor[u]] = v;
            cursor[u] += 1;
            adj[cursor[v]] = u;
            cursor[v] += 1;
        }
        Ok(CommGraph {
            n,
            offsets,
            adj,
            edges: canon,
        })
    }

    /// A path `0 - 1 - ... - (n-1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn path(n: usize) -> Self {
        let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Self::from_edges(n, &edges).expect("path construction is always valid for n >= 1")
    }

    /// A star with center `0` and leaves `1..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn star(n: usize) -> Self {
        let edges: Vec<_> = (1..n).map(|i| (0, i)).collect();
        Self::from_edges(n, &edges).expect("star construction is always valid for n >= 1")
    }

    /// The complete graph on `n` machines.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn complete(n: usize) -> Self {
        let mut edges = Vec::with_capacity(n * (n - 1) / 2);
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v));
            }
        }
        Self::from_edges(n, &edges).expect("complete construction is always valid for n >= 1")
    }

    /// Number of machines.
    #[inline]
    pub fn n_machines(&self) -> usize {
        self.n
    }

    /// Number of links.
    #[inline]
    pub fn n_links(&self) -> usize {
        self.edges.len()
    }

    /// Degree of machine `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: MachineId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Neighbors of machine `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: MachineId) -> &[MachineId] {
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Canonicalized (`u < v`) edge list.
    #[inline]
    pub fn edges(&self) -> &[(MachineId, MachineId)] {
        &self.edges
    }

    /// Whether the link `{u, v}` exists (binary search in CSR row).
    pub fn has_link(&self, u: MachineId, v: MachineId) -> bool {
        if u >= self.n || v >= self.n {
            return false;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// BFS distances from `src`; unreachable machines get `usize::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn bfs_distances(&self, src: MachineId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        let mut q = VecDeque::new();
        dist[src] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            for &w in self.neighbors(u) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    q.push_back(w);
                }
            }
        }
        dist
    }

    /// BFS restricted to a machine subset. Returns `(parent, depth)` maps
    /// over the subset (indexed by machine id; machines outside the subset
    /// keep `usize::MAX` depth and `None` parent).
    ///
    /// Used to build support trees inside clusters. Loops that BFS many
    /// subsets of one graph should prefer
    /// [`Self::bfs_tree_within_scratch`], which reuses the `O(n)` maps
    /// instead of allocating them per call.
    pub fn bfs_tree_within(
        &self,
        src: MachineId,
        in_subset: &[bool],
    ) -> (Vec<Option<MachineId>>, Vec<usize>) {
        let mut scratch = BfsScratch::default();
        self.bfs_tree_within_scratch(src, in_subset, &mut scratch);
        (scratch.parent, scratch.depth)
    }

    /// [`Self::bfs_tree_within`] into a reusable [`BfsScratch`]: the
    /// `O(n)` parent/depth maps are (re)sized once and the BFS touches
    /// only subset entries, so a loop over many small subsets pays
    /// `O(subset + internal edges)` per call instead of `O(n)` — the win
    /// that makes per-cluster support-tree construction shardable and
    /// cheap. After reading the results the caller **must** call
    /// [`BfsScratch::reset`] with the subset's machines before reusing the
    /// scratch.
    ///
    /// The visit order (CSR neighbor order per machine) is exactly
    /// [`Self::bfs_tree_within`]'s — the two produce identical trees.
    pub fn bfs_tree_within_scratch(
        &self,
        src: MachineId,
        in_subset: &[bool],
        scratch: &mut BfsScratch,
    ) {
        debug_assert!(in_subset.len() == self.n);
        scratch.ensure(self.n);
        if !in_subset[src] {
            return;
        }
        scratch.depth[src] = 0;
        scratch.queue.push_back(src);
        while let Some(u) = scratch.queue.pop_front() {
            let du = scratch.depth[u];
            for &w in self.neighbors(u) {
                if in_subset[w] && scratch.depth[w] == usize::MAX {
                    scratch.depth[w] = du + 1;
                    scratch.parent[w] = Some(u);
                    scratch.queue.push_back(w);
                }
            }
        }
    }

    /// Whether the whole graph is connected.
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let dist = self.bfs_distances(0);
        dist.iter().all(|&d| d != usize::MAX)
    }

    /// Maximum degree over all machines.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }
}

/// Reusable workspace for [`CommGraph::bfs_tree_within_scratch`]: the
/// full-size parent/depth maps plus the BFS queue, sized lazily and reset
/// sparsely (only the entries a BFS touched) so repeated subset BFS over
/// one graph never re-allocates or re-clears `O(n)` state.
#[derive(Debug, Default)]
pub struct BfsScratch {
    parent: Vec<Option<MachineId>>,
    depth: Vec<usize>,
    queue: VecDeque<MachineId>,
}

impl BfsScratch {
    /// Fresh scratch (sized on first use).
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        if self.depth.len() < n {
            self.parent.resize(n, None);
            self.depth.resize(n, usize::MAX);
        }
        debug_assert!(self.queue.is_empty(), "BFS drains its queue");
    }

    /// Parent of `m` in the last BFS tree (`None` for the source and for
    /// unreached machines).
    #[inline]
    pub fn parent(&self, m: MachineId) -> Option<MachineId> {
        self.parent[m]
    }

    /// Depth of `m` in the last BFS tree (`usize::MAX` when unreached).
    #[inline]
    pub fn depth(&self, m: MachineId) -> usize {
        self.depth[m]
    }

    /// Clears the entries of `machines` — exactly the set a subset BFS
    /// may have touched — readying the scratch for the next call.
    pub fn reset<'a>(&mut self, machines: impl IntoIterator<Item = &'a MachineId>) {
        for &m in machines {
            self.parent[m] = None;
            self.depth[m] = usize::MAX;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups_and_normalizes() {
        let g = CommGraph::from_edges(3, &[(0, 1), (1, 0), (2, 1)]).unwrap();
        assert_eq!(g.n_links(), 2);
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
        assert!(g.has_link(1, 0));
        assert!(!g.has_link(0, 2));
    }

    #[test]
    fn rejects_bad_edges() {
        assert!(matches!(
            CommGraph::from_edges(2, &[(0, 2)]),
            Err(NetError::MachineOutOfRange { machine: 2, n: 2 })
        ));
        assert!(matches!(
            CommGraph::from_edges(2, &[(1, 1)]),
            Err(NetError::SelfLoop { machine: 1 })
        ));
        assert!(matches!(
            CommGraph::from_edges(0, &[]),
            Err(NetError::EmptyGraph)
        ));
    }

    #[test]
    fn path_star_complete_shapes() {
        let p = CommGraph::path(6);
        assert_eq!(p.n_links(), 5);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(3), 2);

        let s = CommGraph::star(6);
        assert_eq!(s.degree(0), 5);
        assert_eq!(s.degree(5), 1);
        assert_eq!(s.max_degree(), 5);

        let k = CommGraph::complete(5);
        assert_eq!(k.n_links(), 10);
        assert!(k.is_connected());
    }

    #[test]
    fn bfs_distances_on_path() {
        let p = CommGraph::path(5);
        let d = p.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_tree_within_subset_respects_boundary() {
        // Path 0-1-2-3-4, subset {0,1,2}: machine 3,4 unreachable.
        let p = CommGraph::path(5);
        let subset = vec![true, true, true, false, false];
        let (parent, depth) = p.bfs_tree_within(0, &subset);
        assert_eq!(depth[2], 2);
        assert_eq!(parent[2], Some(1));
        assert_eq!(depth[3], usize::MAX);
        assert_eq!(parent[3], None);
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = CommGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn single_machine_graph() {
        let g = CommGraph::from_edges(1, &[]).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.n_links(), 0);
        assert_eq!(g.degree(0), 0);
    }
}
