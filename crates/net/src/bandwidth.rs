//! Round and bandwidth accounting.
//!
//! The paper's cost model (§3.2) counts synchronous rounds in which every
//! link of the communication network carries at most `O(log n)` bits. A
//! cluster-level round ("H-round") consists of a broadcast on each support
//! tree, computation on inter-cluster links, and a converge-cast back — at
//! most `O(d)` network rounds ("G-rounds") where `d` is the dilation.
//!
//! [`CostMeter`] tracks both axes plus bit traffic, and charges *pipelining
//! penalties* automatically: a message of `b` bits occupies
//! `ceil(b / budget)` consecutive sub-rounds of its link. Algorithms that
//! exceed the `O(log n)` budget therefore pay for it in rounds instead of
//! silently cheating — this is how the harness verifies Theorem 1.2's
//! bandwidth claim empirically.

use std::collections::BTreeMap;

/// Per-phase accumulated cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCost {
    /// Cluster-level rounds charged in this phase.
    pub h_rounds: u64,
    /// Network-level rounds charged in this phase.
    pub g_rounds: u64,
    /// Total bits sent across all links in this phase.
    pub bits: u128,
    /// Largest single message observed in this phase.
    pub max_msg_bits: u64,
}

/// A snapshot of everything the meter has seen.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Total cluster-level rounds.
    pub h_rounds: u64,
    /// Total network-level rounds.
    pub g_rounds: u64,
    /// Total bits sent across all links.
    pub bits: u128,
    /// Largest single message ever sent.
    pub max_msg_bits: u64,
    /// The per-link per-round bit budget the run was configured with.
    pub budget_bits: u64,
    /// Number of messages that exceeded the budget (each was pipelined).
    pub oversized_msgs: u64,
    /// Cost broken down by phase label.
    pub phases: BTreeMap<String, PhaseCost>,
}

impl CostReport {
    /// Whether every message fit the single-round budget.
    pub fn within_budget(&self) -> bool {
        self.oversized_msgs == 0
    }
}

/// Accumulates rounds and bandwidth for one algorithm execution.
///
/// # Example
///
/// ```
/// use cgc_net::CostMeter;
/// let mut m = CostMeter::new(32);
/// m.set_phase("demo");
/// let sub = m.charge_message(80); // 80 bits on a 32-bit budget
/// assert_eq!(sub, 3);             // pipelined over ceil(80/32) = 3 sub-rounds
/// m.charge_rounds(sub, sub * 4);
/// assert_eq!(m.report().h_rounds, 3);
/// ```
#[derive(Debug, Clone)]
pub struct CostMeter {
    budget_bits: u64,
    h_rounds: u64,
    g_rounds: u64,
    bits: u128,
    max_msg_bits: u64,
    oversized_msgs: u64,
    /// Flushed per-phase tallies; the active phase lives in `current`.
    phases: BTreeMap<String, PhaseCost>,
    current_phase: String,
    /// Accumulator for the active phase — charges are plain arithmetic on
    /// this struct, with no map lookup or string traffic per charge.
    current: PhaseCost,
}

impl CostMeter {
    /// Creates a meter with the given per-link per-round bit budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget_bits == 0`.
    pub fn new(budget_bits: u64) -> Self {
        assert!(budget_bits > 0, "bandwidth budget must be positive");
        CostMeter {
            budget_bits,
            h_rounds: 0,
            g_rounds: 0,
            bits: 0,
            max_msg_bits: 0,
            oversized_msgs: 0,
            phases: BTreeMap::new(),
            current_phase: "init".to_owned(),
            current: PhaseCost::default(),
        }
    }

    /// The configured per-link per-round budget in bits.
    #[inline]
    pub fn budget_bits(&self) -> u64 {
        self.budget_bits
    }

    /// Sets the label under which subsequent costs are recorded. Reentering
    /// a phase resumes its tally. Only this switch touches the phase map —
    /// individual charges are constant-time arithmetic.
    pub fn set_phase(&mut self, phase: &str) {
        if phase == self.current_phase {
            return;
        }
        self.flush_current();
        self.current = self.phases.get(phase).copied().unwrap_or_default();
        self.current_phase.clear();
        self.current_phase.push_str(phase);
    }

    /// Currently active phase label.
    pub fn phase(&self) -> &str {
        &self.current_phase
    }

    /// Writes the active accumulator back into the phase map.
    fn flush_current(&mut self) {
        if self.current != PhaseCost::default() {
            self.phases.insert(self.current_phase.clone(), self.current);
        }
    }

    /// Records a single message of `bits` bits and returns the number of
    /// sub-rounds (`ceil(bits / budget)`, minimum 1) the message occupies.
    pub fn charge_message(&mut self, bits: u64) -> u64 {
        self.bits += u128::from(bits);
        if bits > self.max_msg_bits {
            self.max_msg_bits = bits;
        }
        let budget = self.budget_bits;
        self.current.bits += u128::from(bits);
        if bits > self.current.max_msg_bits {
            self.current.max_msg_bits = bits;
        }
        let sub = bits.div_ceil(budget).max(1);
        if sub > 1 {
            self.oversized_msgs += 1;
        }
        sub
    }

    /// Records many messages of identical size; returns sub-rounds needed.
    pub fn charge_messages(&mut self, bits_each: u64, count: u64) -> u64 {
        if count == 0 {
            return 1;
        }
        self.bits += u128::from(bits_each) * u128::from(count);
        if bits_each > self.max_msg_bits {
            self.max_msg_bits = bits_each;
        }
        let budget = self.budget_bits;
        self.current.bits += u128::from(bits_each) * u128::from(count);
        if bits_each > self.current.max_msg_bits {
            self.current.max_msg_bits = bits_each;
        }
        let sub = bits_each.div_ceil(budget).max(1);
        if sub > 1 {
            self.oversized_msgs += count;
        }
        sub
    }

    /// Records `repeats` identical batches of `count` messages of
    /// `bits_each` bits — the O(1) equivalent of calling
    /// [`Self::charge_messages`] `repeats` times. Returns the sub-rounds
    /// one batch needs (identical for every batch by construction).
    pub fn charge_messages_repeated(&mut self, bits_each: u64, count: u64, repeats: u64) -> u64 {
        if count == 0 || repeats == 0 {
            return 1;
        }
        let total = u128::from(bits_each) * u128::from(count) * u128::from(repeats);
        self.bits += total;
        if bits_each > self.max_msg_bits {
            self.max_msg_bits = bits_each;
        }
        let budget = self.budget_bits;
        self.current.bits += total;
        if bits_each > self.current.max_msg_bits {
            self.current.max_msg_bits = bits_each;
        }
        let sub = bits_each.div_ceil(budget).max(1);
        if sub > 1 {
            self.oversized_msgs += count * repeats;
        }
        sub
    }

    /// Adds `h` cluster-level rounds and `g` network-level rounds.
    pub fn charge_rounds(&mut self, h: u64, g: u64) {
        self.h_rounds += h;
        self.g_rounds += g;
        self.current.h_rounds += h;
        self.current.g_rounds += g;
    }

    /// Total cluster-level rounds so far.
    #[inline]
    pub fn h_rounds(&self) -> u64 {
        self.h_rounds
    }

    /// Total network-level rounds so far.
    #[inline]
    pub fn g_rounds(&self) -> u64 {
        self.g_rounds
    }

    /// Takes a snapshot of all counters.
    pub fn report(&self) -> CostReport {
        let mut phases = self.phases.clone();
        if self.current != PhaseCost::default() {
            phases.insert(self.current_phase.clone(), self.current);
        }
        CostReport {
            h_rounds: self.h_rounds,
            g_rounds: self.g_rounds,
            bits: self.bits,
            max_msg_bits: self.max_msg_bits,
            budget_bits: self.budget_bits,
            oversized_msgs: self.oversized_msgs,
            phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_within_budget_is_one_subround() {
        let mut m = CostMeter::new(64);
        assert_eq!(m.charge_message(64), 1);
        assert_eq!(m.charge_message(1), 1);
        assert_eq!(m.charge_message(0), 1);
        assert_eq!(m.report().oversized_msgs, 0);
    }

    #[test]
    fn oversized_message_is_pipelined() {
        let mut m = CostMeter::new(10);
        assert_eq!(m.charge_message(25), 3);
        let r = m.report();
        assert_eq!(r.oversized_msgs, 1);
        assert_eq!(r.max_msg_bits, 25);
        assert!(!r.within_budget());
    }

    #[test]
    fn phases_accumulate_independently() {
        let mut m = CostMeter::new(8);
        m.set_phase("a");
        m.charge_message(8);
        m.charge_rounds(1, 3);
        m.set_phase("b");
        m.charge_messages(4, 10);
        m.charge_rounds(2, 6);
        let r = m.report();
        assert_eq!(r.phases["a"].h_rounds, 1);
        assert_eq!(r.phases["a"].bits, 8);
        assert_eq!(r.phases["b"].bits, 40);
        assert_eq!(r.phases["b"].g_rounds, 6);
        assert_eq!(r.h_rounds, 3);
        assert_eq!(r.g_rounds, 9);
        assert_eq!(r.bits, 48);
    }

    #[test]
    fn repeated_batches_match_a_loop_of_batches() {
        for (bits, count, repeats) in [(4u64, 3u64, 5u64), (25, 2, 7), (0, 4, 2)] {
            let mut bulk = CostMeter::new(8);
            let sub_bulk = bulk.charge_messages_repeated(bits, count, repeats);
            let mut looped = CostMeter::new(8);
            let mut sub_loop = 1;
            for _ in 0..repeats {
                sub_loop = looped.charge_messages(bits, count);
            }
            assert_eq!(sub_bulk, sub_loop);
            assert_eq!(bulk.report().bits, looped.report().bits);
            assert_eq!(bulk.report().oversized_msgs, looped.report().oversized_msgs);
            assert_eq!(bulk.report().max_msg_bits, looped.report().max_msg_bits);
        }
    }

    #[test]
    fn charge_messages_zero_count_is_noop_round() {
        let mut m = CostMeter::new(8);
        assert_eq!(m.charge_messages(100, 0), 1);
        assert_eq!(m.report().bits, 0);
        assert_eq!(m.report().oversized_msgs, 0);
    }

    #[test]
    #[should_panic(expected = "bandwidth budget must be positive")]
    fn zero_budget_panics() {
        let _ = CostMeter::new(0);
    }
}
