//! Edge delta batches: validated, canonicalized insert/delete sets.
//!
//! A [`DeltaBatch`] is the mutation analogue of the bulk edge runs that
//! [`crate::CommGraph::from_edge_runs_with`] ingests: both lists pass
//! through the same sharded validate → canonicalize → sort/dedup →
//! k-way-merge pipeline, so a batch is a pair of canonical (`u < v`,
//! sorted, duplicate-free) edge sets with deterministic, earliest-in-input
//! error reporting at any thread count. Applying a batch replaces the edge
//! set `E` by `(E \ deletes) ∪ inserts`; inserting an edge that already
//! exists or deleting one that does not is a no-op, but listing the same
//! edge on both sides is rejected at construction
//! ([`NetError::ConflictingDelta`]) because the result would depend on
//! application order.

use crate::error::NetError;
use crate::graph::MachineId;
use crate::par::{kway_merge_dedup, map_reduce_on, ParallelConfig, ShardPlan, WorkerPool};

/// A validated batch of edge insertions and deletions over `n` machines.
///
/// Both lists are canonical: `u < v`, sorted ascending, duplicate-free,
/// and disjoint from each other. Construct with [`DeltaBatch::new`] /
/// [`DeltaBatch::new_with`]; apply with
/// [`crate::CommGraph::apply_delta`].
///
/// # Example
///
/// ```
/// use cgc_net::{CommGraph, DeltaBatch};
/// let mut g = CommGraph::path(4); // 0-1-2-3
/// let batch = DeltaBatch::new(4, &[(3, 0)], &[(1, 2)]).unwrap();
/// let effect = g.apply_delta(&batch).unwrap();
/// assert_eq!(effect.inserted, vec![(0, 3)]);
/// assert_eq!(effect.deleted, vec![(1, 2)]);
/// assert!(g.has_link(0, 3) && !g.has_link(1, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaBatch {
    n: usize,
    inserts: Vec<(MachineId, MachineId)>,
    deletes: Vec<(MachineId, MachineId)>,
}

/// Validate + canonicalize + sort/dedup one edge list, sharded exactly
/// like `from_edge_runs_with`'s phase 1: contiguous input shards merged in
/// shard order, so the reported error is the earliest bad edge in input
/// order at any thread count.
fn canonicalize(
    n: usize,
    edges: &[(MachineId, MachineId)],
    par: &ParallelConfig,
) -> Result<Vec<(MachineId, MachineId)>, NetError> {
    let plan = ShardPlan::even(edges.len(), par.threads());
    let pool = WorkerPool::global(par.threads());
    let sorted_runs = map_reduce_on(
        &plan,
        pool.as_deref(),
        |range| -> Result<Vec<Vec<(usize, usize)>>, NetError> {
            let mut canon: Vec<(usize, usize)> = Vec::with_capacity(range.len());
            for &(u, v) in &edges[range] {
                if u >= n {
                    return Err(NetError::MachineOutOfRange { machine: u, n });
                }
                if v >= n {
                    return Err(NetError::MachineOutOfRange { machine: v, n });
                }
                if u == v {
                    return Err(NetError::SelfLoop { machine: u });
                }
                canon.push((u.min(v), u.max(v)));
            }
            canon.sort_unstable();
            canon.dedup();
            Ok(vec![canon])
        },
        |acc, part| {
            if let Ok(lists) = acc {
                match part {
                    Ok(more) => lists.extend(more),
                    Err(e) => *acc = Err(e),
                }
            }
        },
    )?;
    Ok(kway_merge_dedup(sorted_runs))
}

impl DeltaBatch {
    /// Builds a batch from raw (unordered, possibly duplicated) insert and
    /// delete edge lists, serially.
    ///
    /// # Errors
    ///
    /// [`NetError::EmptyGraph`] when `n == 0`;
    /// [`NetError::MachineOutOfRange`] / [`NetError::SelfLoop`] for the
    /// earliest invalid edge (inserts are checked before deletes);
    /// [`NetError::ConflictingDelta`] for the smallest canonical edge
    /// listed on both sides.
    pub fn new(
        n: usize,
        inserts: &[(MachineId, MachineId)],
        deletes: &[(MachineId, MachineId)],
    ) -> Result<Self, NetError> {
        Self::new_with(n, inserts, deletes, &ParallelConfig::serial())
    }

    /// [`Self::new`] with validation, canonicalization and sort/dedup
    /// sharded over `par`'s threads — the result (and, on invalid input,
    /// the reported error) is identical to the serial path at any thread
    /// count.
    ///
    /// # Errors
    ///
    /// As [`Self::new`].
    pub fn new_with(
        n: usize,
        inserts: &[(MachineId, MachineId)],
        deletes: &[(MachineId, MachineId)],
        par: &ParallelConfig,
    ) -> Result<Self, NetError> {
        if n == 0 {
            return Err(NetError::EmptyGraph);
        }
        let inserts = canonicalize(n, inserts, par)?;
        let deletes = canonicalize(n, deletes, par)?;
        // Both lists are sorted, so the intersection check is one linear
        // two-pointer walk; the smallest common edge is reported.
        let (mut i, mut d) = (0usize, 0usize);
        while i < inserts.len() && d < deletes.len() {
            match inserts[i].cmp(&deletes[d]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => d += 1,
                std::cmp::Ordering::Equal => {
                    let (u, v) = inserts[i];
                    return Err(NetError::ConflictingDelta { u, v });
                }
            }
        }
        Ok(DeltaBatch {
            n,
            inserts,
            deletes,
        })
    }

    /// The machine count the batch was validated against.
    #[inline]
    pub fn n_machines(&self) -> usize {
        self.n
    }

    /// Canonical (`u < v`, sorted, deduplicated) insert list.
    #[inline]
    pub fn inserts(&self) -> &[(MachineId, MachineId)] {
        &self.inserts
    }

    /// Canonical (`u < v`, sorted, deduplicated) delete list.
    #[inline]
    pub fn deletes(&self) -> &[(MachineId, MachineId)] {
        &self.deletes
    }

    /// Total number of edges named by the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Whether the batch names no edges at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Approximate heap footprint in bytes (element counts × element
    /// sizes, like [`crate::CommGraph::approx_heap_bytes`]). Used by the
    /// serve-layer delta history accounting.
    pub fn approx_heap_bytes(&self) -> usize {
        std::mem::size_of_val(&self.inserts[..]) + std::mem::size_of_val(&self.deletes[..])
    }
}

/// The *effective* mutation an applied batch performed: the canonical
/// edges actually added (listed inserts that were absent) and actually
/// removed (listed deletes that were present). No-op entries are filtered
/// out, so higher layers can propagate exactly the real change.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeltaEffect {
    /// Canonical edges newly present after the batch.
    pub inserted: Vec<(MachineId, MachineId)>,
    /// Canonical edges removed by the batch.
    pub deleted: Vec<(MachineId, MachineId)>,
}

impl DeltaEffect {
    /// Whether the batch changed the edge set at all.
    #[inline]
    pub fn is_noop(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }

    /// Number of edges actually changed (inserted + deleted).
    #[inline]
    pub fn len(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }

    /// Whether nothing changed — alias of [`Self::is_noop`] for the
    /// conventional pairing with [`Self::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.is_noop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_and_dedups_both_lists() {
        let b = DeltaBatch::new(5, &[(3, 1), (1, 3), (0, 4)], &[(2, 0), (0, 2)]).unwrap();
        assert_eq!(b.inserts(), &[(0, 4), (1, 3)]);
        assert_eq!(b.deletes(), &[(0, 2)]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn rejects_invalid_edges_inserts_first() {
        assert!(matches!(
            DeltaBatch::new(3, &[(0, 5)], &[(1, 1)]),
            Err(NetError::MachineOutOfRange { machine: 5, n: 3 })
        ));
        assert!(matches!(
            DeltaBatch::new(3, &[(0, 1)], &[(2, 2)]),
            Err(NetError::SelfLoop { machine: 2 })
        ));
        assert!(matches!(
            DeltaBatch::new(0, &[], &[]),
            Err(NetError::EmptyGraph)
        ));
    }

    #[test]
    fn rejects_conflicting_edge_in_both_lists() {
        // (2, 1) inserts vs (1, 2) deletes: same canonical edge.
        let err = DeltaBatch::new(4, &[(0, 3), (2, 1)], &[(1, 2)]).unwrap_err();
        assert_eq!(err, NetError::ConflictingDelta { u: 1, v: 2 });
    }

    #[test]
    fn sharded_construction_matches_serial() {
        let ins: Vec<_> = (0..200).map(|i| (i % 40, (i * 7 + 1) % 40)).collect();
        let del: Vec<_> = (0..100).map(|i| (i % 37, (i * 11 + 2) % 37)).collect();
        let ins: Vec<_> = ins.into_iter().filter(|(u, v)| u != v).collect();
        let del: Vec<_> = del.into_iter().filter(|(u, v)| u != v).collect();
        // Delete list shifted out of the insert range so the two stay
        // disjoint after canonicalization.
        let del: Vec<_> = del.iter().map(|&(u, v)| (u + 40, v + 40)).collect();
        let reference = DeltaBatch::new(100, &ins, &del).unwrap();
        for threads in [2, 4, 8] {
            let got = DeltaBatch::new_with(100, &ins, &del, &ParallelConfig::with_threads(threads))
                .unwrap();
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn sharded_error_is_earliest_in_input_order() {
        let mut ins: Vec<_> = (0..300).map(|i| (i % 50, (i * 3 + 1) % 50)).collect();
        ins.retain(|(u, v)| u != v);
        ins[20] = (7, 7); // earliest bad edge
        ins[250] = (0, 999); // later bad edge
        for threads in [1, 2, 4, 8] {
            let err = DeltaBatch::new_with(50, &ins, &[], &ParallelConfig::with_threads(threads))
                .unwrap_err();
            assert!(
                matches!(err, NetError::SelfLoop { machine: 7 }),
                "threads={threads}: {err:?}"
            );
        }
    }
}
