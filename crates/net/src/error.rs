//! Error types for the network substrate.

use std::fmt;

/// Errors produced while constructing or validating communication graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// An edge referenced a machine id `>= n`.
    MachineOutOfRange {
        /// The offending machine id.
        machine: usize,
        /// The number of machines in the graph.
        n: usize,
    },
    /// A self-loop `(u, u)` was supplied.
    SelfLoop {
        /// The machine with the self-loop.
        machine: usize,
    },
    /// A cluster was not connected in the communication graph.
    DisconnectedCluster {
        /// The cluster id that failed the connectivity check.
        cluster: usize,
    },
    /// A cluster assignment vector had the wrong length.
    AssignmentLength {
        /// Expected length (number of machines).
        expected: usize,
        /// Actual length supplied.
        actual: usize,
    },
    /// A delta batch listed the same edge as both an insert and a delete.
    ConflictingDelta {
        /// Lower endpoint of the conflicting canonical edge.
        u: usize,
        /// Higher endpoint of the conflicting canonical edge.
        v: usize,
    },
    /// An empty graph (zero machines) was supplied where machines are needed.
    EmptyGraph,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::MachineOutOfRange { machine, n } => {
                write!(f, "machine id {machine} out of range for {n} machines")
            }
            NetError::SelfLoop { machine } => write!(f, "self-loop at machine {machine}"),
            NetError::DisconnectedCluster { cluster } => {
                write!(
                    f,
                    "cluster {cluster} is not connected in the communication graph"
                )
            }
            NetError::AssignmentLength { expected, actual } => {
                write!(
                    f,
                    "cluster assignment has length {actual}, expected {expected}"
                )
            }
            NetError::ConflictingDelta { u, v } => {
                write!(f, "edge ({u}, {v}) appears as both insert and delete")
            }
            NetError::EmptyGraph => write!(f, "communication graph has no machines"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            NetError::MachineOutOfRange { machine: 7, n: 3 },
            NetError::SelfLoop { machine: 1 },
            NetError::DisconnectedCluster { cluster: 2 },
            NetError::AssignmentLength {
                expected: 4,
                actual: 2,
            },
            NetError::ConflictingDelta { u: 1, v: 2 },
            NetError::EmptyGraph,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(NetError::EmptyGraph);
        assert_eq!(e.to_string(), "communication graph has no machines");
    }
}
