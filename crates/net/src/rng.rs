//! Deterministic per-entity random streams.
//!
//! The paper's model gives every machine access to private random bits
//! (§3.2). For reproducible experiments we derive every entity's stream from
//! a single master seed through a SplitMix64 key-derivation step, so that a
//! run is fully determined by `(seed, topology, parameters)` and any
//! experiment row can be replayed.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SplitMix64 finalizer, used to decorrelate derived seeds.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A factory of independent, deterministic random streams keyed by
/// `(entity, salt)` pairs.
///
/// # Example
///
/// ```
/// use cgc_net::SeedStream;
/// use rand::RngExt;
///
/// let s = SeedStream::new(42);
/// let mut a = s.rng_for(7, 0);
/// let mut b = s.rng_for(7, 0);
/// assert_eq!(a.random::<u64>(), b.random::<u64>()); // replayable
/// let mut c = s.rng_for(8, 0);
/// // different entity: (almost surely) a different stream
/// let _ = c.random::<u64>();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    master: u64,
}

impl SeedStream {
    /// Creates a stream factory from a master seed.
    pub fn new(master: u64) -> Self {
        SeedStream { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the RNG for entity `id` with the given `salt`
    /// (e.g. a round number or a stage tag).
    pub fn rng_for(&self, id: u64, salt: u64) -> ChaCha8Rng {
        let k = splitmix64(
            self.master ^ splitmix64(id) ^ splitmix64(salt.wrapping_mul(0xA24B_AED4_963E_E407)),
        );
        ChaCha8Rng::seed_from_u64(k)
    }

    /// Derives a child factory, useful to namespace a whole stage.
    pub fn child(&self, salt: u64) -> SeedStream {
        SeedStream {
            master: splitmix64(self.master ^ splitmix64(salt)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_key_same_stream() {
        let s = SeedStream::new(123);
        let xs: Vec<u64> = (0..8).map(|_| 0u64).collect();
        let mut a = s.rng_for(5, 9);
        let mut b = s.rng_for(5, 9);
        let va: Vec<u64> = xs.iter().map(|_| a.random()).collect();
        let vb: Vec<u64> = xs.iter().map(|_| b.random()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_salt_different_stream() {
        let s = SeedStream::new(123);
        let mut a = s.rng_for(5, 0);
        let mut b = s.rng_for(5, 1);
        let va: Vec<u64> = (0..4).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn child_streams_are_namespaced() {
        let s = SeedStream::new(7);
        let c1 = s.child(1);
        let c2 = s.child(2);
        assert_ne!(c1, c2);
        let mut a = c1.rng_for(0, 0);
        let mut b = c2.rng_for(0, 0);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn uniformity_smoke() {
        // Not a statistical test, just a sanity check that derived streams
        // cover the range reasonably.
        let s = SeedStream::new(99);
        let mut counts = [0usize; 4];
        for id in 0..400u64 {
            let mut r = s.rng_for(id, 0);
            counts[r.random_range(0..4usize)] += 1;
        }
        for c in counts {
            assert!(c > 50, "bucket too empty: {c}");
        }
    }
}
