//! Pins the worker-pool lifecycle across global-cache growth: replacing
//! the process-global pool with a wider one must shut the retired pool's
//! workers down (terminate + unpark + join), so live pool threads always
//! equal the final capacity — the retired-worker-set leak `WorkerPool`
//! used to merely document. Runs as its own integration binary so no
//! sibling test spawns pool threads in this process mid-assertion.

use cgc_net::WorkerPool;
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn global_growth_retires_and_joins_old_worker_sets() {
    // Seed the cache, then grow it twice while *holding* the earlier Arcs
    // — the historical leak scenario (an ascending sweep keeping runtimes
    // alive accumulated one parked worker set per growth step).
    let first = WorkerPool::global(3).expect("parallel request gets a pool");
    assert_eq!(
        WorkerPool::live_threads(),
        first.max_shards() as u64 - 1,
        "fresh pool: live threads are its workers"
    );

    let second = WorkerPool::global(first.max_shards() + 2).expect("grown pool");
    assert!(second.max_shards() > first.max_shards());
    assert!(
        first.is_shut_down(),
        "growth must shut the retired pool down"
    );
    assert_eq!(
        WorkerPool::live_threads(),
        second.max_shards() as u64 - 1,
        "after growth, live pool threads equal the final capacity"
    );

    let third = WorkerPool::global(second.max_shards() + 1).expect("grown again");
    assert!(second.is_shut_down());
    assert_eq!(
        WorkerPool::live_threads(),
        third.max_shards() as u64 - 1,
        "every growth step retires the previous worker set"
    );

    // A holder that missed the retirement stays correct: dispatches on the
    // shut-down pool complete on the scoped fallback.
    let hits = AtomicUsize::new(0);
    first.run(first.max_shards(), &|slot| {
        assert!(slot < 3);
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), first.max_shards());

    // The surviving pool serves warm rounds without spawning anything.
    let spawned = WorkerPool::total_threads_spawned();
    for _ in 0..50 {
        let hits = AtomicUsize::new(0);
        third.run(third.max_shards(), &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), third.max_shards());
    }
    assert_eq!(
        WorkerPool::total_threads_spawned(),
        spawned,
        "warm rounds on the grown pool must not spawn threads"
    );

    // Re-requesting any width at or below the cached capacity shares the
    // surviving pool — no churn.
    let again = WorkerPool::global(2).expect("narrow request");
    assert_eq!(again.max_shards(), third.max_shards());
    assert_eq!(WorkerPool::live_threads(), third.max_shards() as u64 - 1);
}
