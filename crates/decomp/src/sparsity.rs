//! Exact sparsity (Definition 4.1) — the analyst's oracle.
//!
//! `ζ_v = (1/Δ) [ C(Δ,2) − (1/2) Σ_{u ∈ N(v)} |N(u) ∩ N(v)| ]` counts
//! (scaled) the edges missing from `v`'s neighborhood. A node is ζ-sparse
//! when `ζ_v ≥ ζ`. These quantities are *not* computable by the
//! distributed algorithm (that is the point of fingerprinting); they are
//! exposed for tests, validation and the E10 experiment.

use cgc_cluster::{ClusterGraph, VertexId};

/// Number of common neighbors of adjacent-or-not vertices `u` and `v`
/// (two-pointer intersection of sorted adjacency rows).
pub fn common_neighbors(g: &ClusterGraph, u: VertexId, v: VertexId) -> usize {
    let (mut i, mut j) = (0usize, 0usize);
    let nu = g.neighbors(u);
    let nv = g.neighbors(v);
    let mut count = 0usize;
    while i < nu.len() && j < nv.len() {
        match nu[i].cmp(&nv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Exact sparsity `ζ_v` for every vertex.
pub fn exact_sparsity(g: &ClusterGraph) -> Vec<f64> {
    let delta = g.max_degree() as f64;
    if delta == 0.0 {
        return vec![0.0; g.n_vertices()];
    }
    let choose2 = delta * (delta - 1.0) / 2.0;
    (0..g.n_vertices())
        .map(|v| {
            let sum: usize = g
                .neighbors(v)
                .iter()
                .map(|&u| common_neighbors(g, u, v))
                .sum();
            (choose2 - 0.5 * sum as f64) / delta
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_net::CommGraph;

    #[test]
    fn clique_vertices_have_zero_sparsity() {
        let g = ClusterGraph::singletons(CommGraph::complete(10));
        let z = exact_sparsity(&g);
        // In K_10: Δ=9, each pair of neighbors of v is adjacent:
        // Σ |N(u)∩N(v)| over u∈N(v) = 9 * 8 = 72; ζ = (36 - 36)/9 = 0.
        for (v, &s) in z.iter().enumerate() {
            assert!(s.abs() < 1e-9, "vertex {v} sparsity {s}");
        }
    }

    #[test]
    fn star_center_is_maximally_sparse() {
        let g = ClusterGraph::singletons(CommGraph::star(11));
        let z = exact_sparsity(&g);
        // Center: Δ=10, no two leaves adjacent: ζ_0 = C(10,2)/10 = 4.5.
        assert!((z[0] - 4.5).abs() < 1e-9, "center sparsity {}", z[0]);
    }

    #[test]
    fn common_neighbors_counts_correctly() {
        // Path 0-1-2-3: N(0)={1}, N(2)={1,3} -> common = {1}.
        let g = ClusterGraph::singletons(CommGraph::path(4));
        assert_eq!(common_neighbors(&g, 0, 2), 1);
        assert_eq!(common_neighbors(&g, 0, 1), 0);
        assert_eq!(common_neighbors(&g, 0, 3), 0);
    }

    #[test]
    fn sparsity_separates_planted_structure() {
        // A 10-clique (vertices 0..10) plus a disjoint 5-cycle
        // (vertices 10..15): clique members have ζ = 0, cycle members
        // ζ = C(Δ,2)/Δ = 4 with Δ = 9.
        let mut edges = Vec::new();
        for u in 0..10 {
            for v in (u + 1)..10 {
                edges.push((u, v));
            }
        }
        for j in 0..5 {
            edges.push((10 + j, 10 + (j + 1) % 5));
        }
        let g = ClusterGraph::singletons(CommGraph::from_edges(15, &edges).unwrap());
        let z = exact_sparsity(&g);
        for (v, &s) in z.iter().enumerate().take(10) {
            assert!(s.abs() < 1e-9, "clique vertex {v} sparsity {s}");
        }
        for (v, &s) in z.iter().enumerate().skip(10) {
            assert!((s - 4.0).abs() < 1e-9, "cycle vertex {v} sparsity {s}");
        }
    }
}
