//! Cabal classification and reserved colors (§4.1, Equations 1–2).
//!
//! A *cabal* is an almost-clique whose average estimated external degree
//! satisfies `ẽ_K < ℓ` — too few outside connections (and too few
//! anti-edges) for slack generation and sampling arguments to work, so the
//! algorithm treats cabals with put-aside sets and fingerprint matchings.
//! Every almost-clique reserves the colors `{1, …, r_K}` with
//! `r_K = ρ · max(ẽ_K, ℓ)` (paper: ρ = 250), capped at a small fraction of
//! the color space so they stay dispensable in earlier stages.

use crate::degrees::DegreeProfile;

/// Cabal flags and reserved-color counts per clique.
#[derive(Debug, Clone)]
pub struct CabalInfo {
    /// The threshold `ℓ` used.
    pub ell: f64,
    /// Whether clique `i` is a cabal.
    pub is_cabal: Vec<bool>,
    /// Reserved colors `r_K` for clique `i`.
    pub reserved: Vec<usize>,
}

impl CabalInfo {
    /// Number of cabals.
    pub fn n_cabals(&self) -> usize {
        self.is_cabal.iter().filter(|&&b| b).count()
    }
}

/// Classifies cliques into cabals/non-cabals and assigns reserved colors.
///
/// `rho` is the paper's factor 250 in Equation (2); at laptop scale the
/// caller passes a small value so that `r_K ≤ cap_frac · Δ` is not always
/// binding. `r_K` is clamped into `[1, cap_frac · Δ]`.
pub fn classify_cabals(
    profile: &DegreeProfile,
    delta: usize,
    ell: f64,
    rho: f64,
    cap_frac: f64,
) -> CabalInfo {
    let cap = ((cap_frac * delta as f64).floor() as usize).max(1);
    let mut is_cabal = Vec::with_capacity(profile.e_avg.len());
    let mut reserved = Vec::with_capacity(profile.e_avg.len());
    for &ek in &profile.e_avg {
        is_cabal.push(ek < ell);
        let r = (rho * ek.max(ell)).ceil() as usize;
        reserved.push(r.clamp(1, cap));
    }
    CabalInfo {
        ell,
        is_cabal,
        reserved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(e_avg: Vec<f64>) -> DegreeProfile {
        let k = e_avg.len();
        DegreeProfile {
            e_est: Vec::new(),
            e_avg,
            clique_size: vec![10; k],
            x_v: Vec::new(),
            e_exact: Vec::new(),
            a_exact: Vec::new(),
        }
    }

    #[test]
    fn low_external_degree_is_cabal() {
        let p = profile(vec![0.5, 3.0, 10.0]);
        let info = classify_cabals(&p, 100, 4.0, 2.0, 0.3);
        assert_eq!(info.is_cabal, vec![true, true, false]);
        assert_eq!(info.n_cabals(), 2);
    }

    #[test]
    fn reserved_colors_scale_with_external_degree() {
        let p = profile(vec![1.0, 8.0]);
        let info = classify_cabals(&p, 1000, 4.0, 2.0, 0.3);
        // Cabal: r = 2·max(1,4) = 8; non-cabal: r = 2·8 = 16.
        assert_eq!(info.reserved, vec![8, 16]);
    }

    #[test]
    fn reserved_colors_capped() {
        let p = profile(vec![50.0]);
        let info = classify_cabals(&p, 20, 4.0, 250.0, 0.3);
        assert_eq!(info.reserved, vec![6], "capped at 0.3 · 20");
    }

    #[test]
    fn empty_profile_is_fine() {
        let p = profile(vec![]);
        let info = classify_cabals(&p, 10, 4.0, 2.0, 0.3);
        assert_eq!(info.n_cabals(), 0);
        assert!(info.reserved.is_empty());
    }
}
