//! The ξ-buddy predicate (Lemma 5.8).
//!
//! An edge `{u, v}` is ξ-*friendly* when `|N(u) ∩ N(v)| ≥ (1 − ξ)Δ`. The
//! buddy predicate must answer Yes on ξ-friendly edges and No on edges
//! that are not 2ξ-friendly (anything in between may go either way). On
//! cluster graphs, `|N(u) ∩ N(v)|` is a set-intersection instance — so the
//! algorithm instead estimates `|N(u) ∪ N(v)|` by exchanging neighborhood
//! *fingerprints* across one link and using
//! `|N(u) ∩ N(v)| = deg(u) + deg(v) − |N(u) ∪ N(v)|` implicitly through
//! the thresholds of Lemma 5.8.

use cgc_cluster::{ClusterNet, VertexId};
use cgc_net::SeedStream;
use cgc_sketch::{encoded_bits, neighborhood_fingerprints, CountingParams};
use std::collections::BTreeMap;

/// Parameters for the buddy computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuddyParams {
    /// Friendliness slack ξ.
    pub xi: f64,
    /// Fingerprint accuracy knobs (trial count scaling).
    pub counting: CountingParams,
}

impl Default for BuddyParams {
    fn default() -> Self {
        BuddyParams {
            xi: 0.1,
            counting: CountingParams::default(),
        }
    }
}

/// Computes the buddy answer for every `H`-edge.
///
/// Returns a map from canonical edges `(u, v)` with `u < v` to the
/// predicate answer. Charges: one degree-estimation fingerprint round, one
/// neighborhood fingerprint round, and one link exchange of encoded
/// fingerprints (Lemma 5.8: `O(ξ^{-2})` rounds total, realized here as
/// pipelined sub-rounds of the same primitives).
pub fn buddy_edges(
    net: &mut ClusterNet<'_>,
    params: &BuddyParams,
    seeds: &SeedStream,
) -> BTreeMap<(VertexId, VertexId), bool> {
    let delta = net.g.max_degree() as f64;
    let xi_p = params.xi / 3.0; // ξ' = Θ(ξ) as in the lemma's proof

    // Degree estimates d̂(v) ∈ (1 ± ξ'/2) deg(v).
    let t = params.counting.trials(net.g.n_vertices());
    let fps = neighborhood_fingerprints(net, t, &seeds.child(1), 0, |_, _| true);
    let deg_est: Vec<f64> = fps.agg.iter().map(|f| f.estimate()).collect();

    // Low-degree vertices answer No on all incident edges.
    let low: Vec<bool> = deg_est
        .iter()
        .map(|&d| d < (1.0 - 1.5 * xi_p) * delta)
        .collect();

    // Joint neighborhoods: the two link machines exchange their clusters'
    // aggregated fingerprints and merge. One link round with compressed
    // fingerprints.
    let link_bits = fps
        .agg
        .iter()
        .map(|f| encoded_bits(f.maxima()))
        .max()
        .unwrap_or(0);
    net.charge_link_round(link_bits);

    let mut out = BTreeMap::new();
    for (u, v) in net.g.h_edges() {
        if low[u] || low[v] {
            out.insert((u, v), false);
            continue;
        }
        let joint = fps.agg[u].merged(&fps.agg[v]).estimate();
        // Friendly edges have |N(u) ∪ N(v)| ≤ (1 + 1.5ξ')Δ (proof of
        // Lemma 5.8); larger unions mean small intersections.
        out.insert((u, v), joint <= (1.0 + 1.5 * xi_p) * delta);
    }
    out
}

/// Exact friendliness oracle: `|N(u) ∩ N(v)| ≥ (1 − ξ)Δ`.
pub fn friendly_oracle(
    g: &cgc_cluster::ClusterGraph,
    xi: f64,
) -> BTreeMap<(VertexId, VertexId), bool> {
    let delta = g.max_degree() as f64;
    g.h_edges()
        .map(|(u, v)| {
            let c = crate::sparsity::common_neighbors(g, u, v) as f64;
            ((u, v), c >= (1.0 - xi) * delta)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_cluster::ClusterGraph;
    use cgc_net::CommGraph;

    /// Two 24-cliques joined by a single bridge edge.
    fn two_cliques(k: usize) -> ClusterGraph {
        let mut edges = Vec::new();
        for u in 0..k {
            for v in (u + 1)..k {
                edges.push((u, v));
                edges.push((u + k, v + k));
            }
        }
        edges.push((0, k));
        ClusterGraph::singletons(CommGraph::from_edges(2 * k, &edges).unwrap())
    }

    #[test]
    fn oracle_separates_intra_from_bridge() {
        let g = two_cliques(24);
        let f = friendly_oracle(&g, 0.3);
        assert!(f[&(1, 2)], "intra-clique edge is friendly");
        assert!(!f[&(0, 24)], "bridge edge is not friendly");
    }

    #[test]
    fn fingerprint_buddy_matches_oracle_on_clear_cases() {
        let g = two_cliques(24);
        let mut net = ClusterNet::with_log_budget(&g, 32);
        let seeds = SeedStream::new(500);
        let params = BuddyParams {
            xi: 0.3,
            counting: CountingParams {
                xi: 0.08,
                t_factor: 60.0,
                min_trials: 1024,
            },
        };
        let buddy = buddy_edges(&mut net, &params, &seeds);
        // Clear positives: intra-clique edges share 22 of Δ=24 neighbors.
        let mut intra_yes = 0usize;
        let mut intra = 0usize;
        for (&(u, v), &b) in &buddy {
            if (u < 24) == (v < 24) && !(u == 0 && v == 24) {
                intra += 1;
                if b {
                    intra_yes += 1;
                }
            }
        }
        assert!(
            intra_yes * 10 >= intra * 9,
            "only {intra_yes}/{intra} intra edges classified buddy"
        );
        // Clear negative: the bridge shares 0 neighbors.
        assert!(!buddy[&(0, 24)], "bridge misclassified as buddy");
    }

    #[test]
    fn buddy_charges_bounded_rounds() {
        let g = two_cliques(12);
        let mut net = ClusterNet::with_log_budget(&g, 32);
        let seeds = SeedStream::new(501);
        let params = BuddyParams::default();
        buddy_edges(&mut net, &params, &seeds);
        let r = net.meter.report();
        assert!(r.h_rounds > 0);
        assert!(r.h_rounds < 2000, "rounds exploded: {}", r.h_rounds);
    }
}
