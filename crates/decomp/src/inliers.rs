//! Inliers and outliers (Equation 4 and §4.3).
//!
//! Vertices that deviate too much from their clique's averages may not
//! receive enough slack and are colored early as *outliers* (they enjoy
//! temporary slack from their many uncolored inlier neighbors). Anti-
//! degrees are not approximable on cluster graphs, so the non-cabal
//! condition uses the Equation (3) proxy `x_v`:
//!
//! * non-cabals (Equation 4):
//!   `I_K = { v : ẽ_v ≤ 20 ẽ_K  ∧  x_v ≤ M_K/2 + (γ/8) ẽ_K }`,
//! * cabals (§4.3): `I_K = { v : ẽ_v ≤ 20 ẽ_K }`.

use crate::degrees::DegreeProfile;
use cgc_cluster::VertexId;

/// Multiplier on `ẽ_K` in the external-degree condition (paper: 20).
pub const EXT_FACTOR: f64 = 20.0;

/// Non-cabal inliers of clique `c` (Equation 4); returns a flag per member
/// of `clique`, positionally.
///
/// `m_k` is the colorful-matching size `M_K` and `gamma` the slack
/// constant `γ_{4.5}`.
pub fn noncabal_inliers(
    profile: &DegreeProfile,
    clique: &[VertexId],
    c: usize,
    m_k: usize,
    gamma: f64,
) -> Vec<bool> {
    let ek = profile.e_avg[c];
    clique
        .iter()
        .map(|&v| {
            profile.e_est[v] <= EXT_FACTOR * ek + 1.0
                && profile.x_v[v] <= m_k as f64 / 2.0 + (gamma / 8.0) * ek
        })
        .collect()
}

/// Cabal inliers of clique `c` (§4.3: external-degree condition only).
pub fn cabal_inliers(profile: &DegreeProfile, clique: &[VertexId], c: usize) -> Vec<bool> {
    let ek = profile.e_avg[c];
    clique
        .iter()
        .map(|&v| profile.e_est[v] <= EXT_FACTOR * ek + 1.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_with(e_est: Vec<f64>, x_v: Vec<f64>, e_avg: f64) -> DegreeProfile {
        let n = e_est.len();
        DegreeProfile {
            e_est,
            e_avg: vec![e_avg],
            clique_size: vec![n],
            x_v,
            e_exact: vec![0; n],
            a_exact: vec![0; n],
        }
    }

    #[test]
    fn high_external_degree_is_outlier() {
        let p = profile_with(vec![1.0, 2.0, 100.0], vec![0.0, 0.0, 0.0], 2.0);
        let clique = vec![0, 1, 2];
        let inl = noncabal_inliers(&p, &clique, 0, 10, 0.1);
        assert_eq!(inl, vec![true, true, false]);
        let cin = cabal_inliers(&p, &clique, 0);
        assert_eq!(cin, vec![true, true, false]);
    }

    #[test]
    fn high_anti_degree_proxy_is_outlier_in_noncabals_only() {
        let p = profile_with(vec![1.0, 1.0], vec![0.0, 50.0], 2.0);
        let clique = vec![0, 1];
        let inl = noncabal_inliers(&p, &clique, 0, 10, 0.1);
        assert_eq!(inl, vec![true, false]);
        // Cabal condition ignores x_v.
        let cin = cabal_inliers(&p, &clique, 0);
        assert_eq!(cin, vec![true, true]);
    }

    #[test]
    fn matching_size_relaxes_the_proxy_bound() {
        let p = profile_with(vec![1.0], vec![20.0], 2.0);
        let clique = vec![0];
        assert_eq!(noncabal_inliers(&p, &clique, 0, 10, 0.1), vec![false]);
        assert_eq!(noncabal_inliers(&p, &clique, 0, 100, 0.1), vec![true]);
    }

    /// Lemma 4.10 shape: with mild deviations, most of a clique is inliers.
    #[test]
    fn most_members_are_inliers() {
        let n = 40;
        let e_est: Vec<f64> = (0..n).map(|i| if i < 2 { 50.0 } else { 2.0 }).collect();
        let x_v = vec![0.0; n];
        let avg = e_est.iter().sum::<f64>() / n as f64;
        let p = profile_with(e_est, x_v, avg);
        let clique: Vec<usize> = (0..n).collect();
        let inl = noncabal_inliers(&p, &clique, 0, 0, 0.1);
        let count = inl.iter().filter(|&&b| b).count();
        assert!(count >= 38, "{count} inliers of {n}");
    }
}
