//! Almost-clique decomposition and density classification (paper §4.1,
//! §5.4).
//!
//! The coloring algorithm starts from Reed's sparse–dense decomposition:
//! vertices are either `Ω(ε²Δ)`-sparse or grouped into ε-almost-cliques
//! (Definition 4.2). On cluster graphs the decomposition itself is
//! non-trivial — vertices cannot even count common neighbors — so it is
//! computed with the fingerprinting technique (Proposition 4.3, Lemma 5.8).
//!
//! * [`sparsity`] — exact sparsity `ζ_v` (Definition 4.1), the analyst's
//!   oracle used by tests and experiment E10;
//! * [`buddy`] — the ξ-buddy predicate per `H`-edge via joint-neighborhood
//!   fingerprints (Lemma 5.8);
//! * [`acd`] — the decomposition (Proposition 4.3) plus a validity-repair
//!   pass and an exact oracle variant;
//! * [`degrees`] — external-degree estimates `ẽ_v`, averages `ẽ_K`, sizes
//!   `|K|` and the anti-degree proxy `x_v` (Equation 3);
//! * [`cabal`] — cabal classification (`ẽ_K < ℓ`) and reserved-color
//!   counts `r_K` (Equation 2);
//! * [`inliers`] — inlier/outlier split (Equation 4 and the cabal variant).

pub mod acd;
pub mod buddy;
pub mod cabal;
pub mod degrees;
pub mod inliers;
pub mod sparsity;

pub use acd::{acd_oracle, compute_acd, AcdParams, AcdQuality, AlmostCliqueDecomp, NodeKind};
pub use buddy::{buddy_edges, BuddyParams};
pub use cabal::{classify_cabals, CabalInfo};
pub use degrees::{degree_profile, DegreeProfile};
pub use inliers::{cabal_inliers, noncabal_inliers};
pub use sparsity::{common_neighbors, exact_sparsity};
