//! The ε-almost-clique decomposition (Definition 4.2, Proposition 4.3).
//!
//! Pipeline: (1) per-edge buddy predicate via fingerprints (Lemma 5.8);
//! (2) exact buddy-degree per vertex in one deduplicated aggregation;
//! (3) almost-cliques = connected components of the buddy graph restricted
//! to high-buddy-degree vertices ([ACK19, Lemma 4.8]: these have diameter
//! 2, so an `O(1)`-round BFS elects leaders); (4) a *repair pass* enforcing
//! Definition 4.2 exactly — at laptop scale the concentration bounds have
//! real failure probability, and downstream stages rely on the
//! decomposition's structural guarantees, so vertices violating the size
//! or internal-degree conditions are peeled into the sparse set (charged
//! rounds; measured by experiment E10).

use crate::buddy::{buddy_edges, friendly_oracle, BuddyParams};
use cgc_cluster::{ClusterGraph, ClusterNet, VertexId};
use cgc_net::SeedStream;
use std::collections::{BTreeMap, VecDeque};

/// Classification of a vertex by the decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// `Ω(ε²Δ)`-sparse vertex.
    Sparse,
    /// Member of the almost-clique with the given index.
    Dense {
        /// Index into [`AlmostCliqueDecomp::cliques`].
        clique: usize,
    },
}

/// An ε-almost-clique decomposition of `H`.
#[derive(Debug, Clone)]
pub struct AlmostCliqueDecomp {
    /// The ε the decomposition was computed for.
    pub epsilon: f64,
    /// Per-vertex classification.
    pub kind: Vec<NodeKind>,
    /// Almost-cliques (sorted member lists).
    pub cliques: Vec<Vec<VertexId>>,
}

impl AlmostCliqueDecomp {
    /// The clique index of `v`, or `None` if sparse.
    pub fn clique_of(&self, v: VertexId) -> Option<usize> {
        match self.kind[v] {
            NodeKind::Sparse => None,
            NodeKind::Dense { clique } => Some(clique),
        }
    }

    /// Whether `v` is classified sparse.
    pub fn is_sparse(&self, v: VertexId) -> bool {
        matches!(self.kind[v], NodeKind::Sparse)
    }

    /// Number of almost-cliques.
    pub fn n_cliques(&self) -> usize {
        self.cliques.len()
    }

    /// Sparse vertices.
    pub fn sparse_vertices(&self) -> Vec<VertexId> {
        (0..self.kind.len())
            .filter(|&v| self.is_sparse(v))
            .collect()
    }

    /// Validates Definition 4.2 exactly against the graph.
    pub fn validate(&self, g: &ClusterGraph) -> AcdQuality {
        let delta = g.max_degree();
        let mut min_size = usize::MAX;
        let mut max_size = 0usize;
        let mut min_internal_frac: f64 = 1.0;
        let mut size_ok = true;
        for k in &self.cliques {
            min_size = min_size.min(k.len());
            max_size = max_size.max(k.len());
            if (k.len() as f64) > (1.0 + self.epsilon) * delta as f64 + 1.0 {
                size_ok = false;
            }
            for &v in k {
                let internal = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| k.binary_search(&u).is_ok())
                    .count();
                let frac = internal as f64 / k.len() as f64;
                min_internal_frac = min_internal_frac.min(frac);
            }
        }
        if self.cliques.is_empty() {
            min_size = 0;
        }
        let internal_ok = min_internal_frac >= 1.0 - self.epsilon - 1e-9;
        AcdQuality {
            n_sparse: self.sparse_vertices().len(),
            n_cliques: self.cliques.len(),
            min_clique_size: min_size,
            max_clique_size: max_size,
            min_internal_frac,
            size_ok,
            internal_ok,
        }
    }
}

/// Exact validation summary of a decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcdQuality {
    /// Number of sparse vertices.
    pub n_sparse: usize,
    /// Number of almost-cliques.
    pub n_cliques: usize,
    /// Smallest almost-clique.
    pub min_clique_size: usize,
    /// Largest almost-clique.
    pub max_clique_size: usize,
    /// `min_{K, v∈K} |N(v) ∩ K| / |K|`.
    pub min_internal_frac: f64,
    /// All cliques within the `(1+ε)Δ` size bound.
    pub size_ok: bool,
    /// All members have `(1−ε)|K|` internal neighbors.
    pub internal_ok: bool,
}

impl AcdQuality {
    /// Whether Definition 4.2's clique conditions hold.
    pub fn is_valid(&self) -> bool {
        self.size_ok && self.internal_ok
    }
}

/// Parameters for the distributed decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcdParams {
    /// Target ε of Definition 4.2 (must be `< 1/3`).
    pub epsilon: f64,
    /// Buddy predicate knobs (ξ defaults to ε).
    pub buddy: BuddyParams,
    /// Dissolve almost-cliques smaller than `min_clique_frac · Δ` into the
    /// sparse set (protects downstream stages from degenerate fragments).
    pub min_clique_frac: f64,
}

impl Default for AcdParams {
    fn default() -> Self {
        // Laptop-scale margins: the paper's ε = 1/2000 presumes Δ large
        // enough that ξΔ dwarfs fingerprint noise; here ξ = 0.3 with
        // ~1.5k-trial fingerprints keeps the Yes/No gap of Lemma 5.8 wide
        // at Δ in the tens, and the repair pass enforces Definition 4.2
        // exactly regardless.
        AcdParams {
            epsilon: 0.2,
            buddy: BuddyParams {
                xi: 0.3,
                counting: cgc_sketch::CountingParams {
                    xi: 0.1,
                    t_factor: 3.0,
                    min_trials: 1536,
                },
            },
            min_clique_frac: 0.55,
        }
    }
}

/// Connected components of the buddy graph restricted to `candidate`s.
fn buddy_components(
    n: usize,
    buddy: &BTreeMap<(VertexId, VertexId), bool>,
    candidate: &[bool],
) -> Vec<Vec<VertexId>> {
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for (&(u, v), &b) in buddy {
        if b && candidate[u] && candidate[v] {
            adj[u].push(v);
            adj[v].push(u);
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut out: Vec<Vec<VertexId>> = Vec::new();
    for s in 0..n {
        if !candidate[s] || comp[s] != usize::MAX || adj[s].is_empty() {
            continue;
        }
        let id = out.len();
        let mut members = vec![s];
        comp[s] = id;
        let mut q = VecDeque::from([s]);
        while let Some(u) = q.pop_front() {
            for &w in &adj[u] {
                if comp[w] == usize::MAX {
                    comp[w] = id;
                    members.push(w);
                    q.push_back(w);
                }
            }
        }
        members.sort_unstable();
        out.push(members);
    }
    out
}

/// Enforces Definition 4.2 on raw components by peeling low-internal-degree
/// vertices into the sparse set. Returns the repaired cliques and the
/// number of peeled vertices.
fn repair_cliques(
    g: &ClusterGraph,
    mut cliques: Vec<Vec<VertexId>>,
    epsilon: f64,
    min_clique_frac: f64,
) -> (Vec<Vec<VertexId>>, usize) {
    let delta = g.max_degree();
    let min_size = ((min_clique_frac * delta as f64).floor() as usize).max(2);
    let max_size = ((1.0 + epsilon) * delta as f64).floor() as usize + 1;
    let mut peeled = 0usize;
    let mut out = Vec::new();
    for k in cliques.iter_mut() {
        loop {
            if k.len() < min_size {
                peeled += k.len();
                k.clear();
                break;
            }
            // Internal degrees under the current membership.
            let internal: Vec<usize> = k
                .iter()
                .map(|&v| {
                    g.neighbors(v)
                        .iter()
                        .filter(|&&u| k.binary_search(&u).is_ok())
                        .count()
                })
                .collect();
            let need = ((1.0 - epsilon) * k.len() as f64).ceil() as usize;
            let worst = (0..k.len())
                .min_by_key(|&i| internal[i])
                .expect("nonempty clique");
            if k.len() > max_size || internal[worst] < need {
                k.remove(worst);
                peeled += 1;
            } else {
                break;
            }
        }
        if !k.is_empty() {
            out.push(std::mem::take(k));
        }
    }
    (out, peeled)
}

fn assemble(n: usize, epsilon: f64, cliques: Vec<Vec<VertexId>>) -> AlmostCliqueDecomp {
    let mut kind = vec![NodeKind::Sparse; n];
    for (i, k) in cliques.iter().enumerate() {
        for &v in k {
            kind[v] = NodeKind::Dense { clique: i };
        }
    }
    AlmostCliqueDecomp {
        epsilon,
        kind,
        cliques,
    }
}

/// Proposition 4.3: computes an ε-almost-clique decomposition on the
/// cluster graph in `O(1/ε²)` rounds (fingerprint rounds + `O(1)` BFS +
/// repair rounds, all charged).
pub fn compute_acd(
    net: &mut ClusterNet<'_>,
    params: &AcdParams,
    seeds: &SeedStream,
) -> AlmostCliqueDecomp {
    let n = net.g.n_vertices();
    let delta = net.g.max_degree() as f64;
    net.set_phase("acd");
    if net.g.max_degree() == 0 {
        return assemble(n, params.epsilon, Vec::new());
    }

    // (1) Buddy predicate per edge.
    let buddy = buddy_edges(net, &params.buddy, &seeds.child(11));

    // (2) Exact buddy-degree: one deduplicated aggregation (§1.1 pattern).
    let id_bits = net.id_bits();
    let buddy_deg = net.neighbor_fold_counts(1, id_bits, &vec![(); n], |v, u, _, _| {
        let key = (v.min(u), v.max(u));
        if buddy.get(&key).copied().unwrap_or(false) {
            Some(1usize)
        } else {
            None
        }
    });

    // (3) Dense candidates and components; the BFS is O(1) rounds because
    // almost-cliques have diameter 2 [ACK19, Lemma 4.8].
    let xi = params.buddy.xi;
    let threshold = ((1.0 - 2.0 * xi) * delta).max(1.0);
    let candidate: Vec<bool> = buddy_deg.iter().map(|&d| d as f64 >= threshold).collect();
    net.charge_full_rounds(3, net.id_bits()); // component BFS + leader ids
    let raw = buddy_components(n, &buddy, &candidate);

    // (4) Repair (each peel iteration is one aggregation round).
    let (cliques, peeled) = repair_cliques(net.g, raw, params.epsilon, params.min_clique_frac);
    net.charge_full_rounds((peeled as u64).min(16) + 1, net.id_bits());

    assemble(n, params.epsilon, cliques)
}

/// Exact-oracle decomposition: identical pipeline with exact friendliness
/// and exact buddy degrees. Used by tests and as a noise-free reference in
/// experiment E10.
pub fn acd_oracle(g: &ClusterGraph, epsilon: f64) -> AlmostCliqueDecomp {
    let n = g.n_vertices();
    let delta = g.max_degree() as f64;
    if g.max_degree() == 0 {
        return assemble(n, epsilon, Vec::new());
    }
    let xi = epsilon;
    let friendly = friendly_oracle(g, xi);
    let mut buddy_deg = vec![0usize; n];
    for (&(u, v), &b) in &friendly {
        if b {
            buddy_deg[u] += 1;
            buddy_deg[v] += 1;
        }
    }
    let threshold = ((1.0 - 2.0 * xi) * delta).max(1.0);
    let candidate: Vec<bool> = buddy_deg.iter().map(|&d| d as f64 >= threshold).collect();
    let raw = buddy_components(n, &friendly, &candidate);
    let (cliques, _) = repair_cliques(g, raw, epsilon, 0.55);
    assemble(n, epsilon, cliques)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_net::CommGraph;

    /// `c` disjoint k-cliques plus `s` sparse vertices wired randomly-ish.
    fn planted(c: usize, k: usize) -> ClusterGraph {
        let mut edges = Vec::new();
        for i in 0..c {
            let base = i * k;
            for u in 0..k {
                for v in (u + 1)..k {
                    edges.push((base + u, base + v));
                }
            }
        }
        // A sparse tail: a path of k vertices attached to nothing dense.
        let tail = c * k;
        for j in 0..(k - 1) {
            edges.push((tail + j, tail + j + 1));
        }
        ClusterGraph::singletons(CommGraph::from_edges(c * k + k, &edges).unwrap())
    }

    #[test]
    fn oracle_recovers_planted_cliques() {
        let g = planted(3, 20);
        let acd = acd_oracle(&g, 0.15);
        assert_eq!(acd.n_cliques(), 3);
        for k in &acd.cliques {
            assert_eq!(k.len(), 20);
        }
        let q = acd.validate(&g);
        assert!(q.is_valid(), "{q:?}");
        // The path tail is sparse.
        assert!(acd.is_sparse(60));
        assert!(acd.is_sparse(65));
    }

    #[test]
    fn distributed_acd_matches_oracle_on_planted() {
        let g = planted(2, 24);
        let mut net = ClusterNet::with_log_budget(&g, 32);
        let seeds = SeedStream::new(900);
        let params = AcdParams {
            epsilon: 0.2,
            buddy: BuddyParams {
                xi: 0.2,
                counting: cgc_sketch::CountingParams {
                    xi: 0.08,
                    t_factor: 60.0,
                    min_trials: 1024,
                },
            },
            min_clique_frac: 0.55,
        };
        let acd = compute_acd(&mut net, &params, &seeds);
        assert_eq!(acd.n_cliques(), 2, "cliques: {:?}", acd.cliques);
        let q = acd.validate(&g);
        assert!(q.is_valid(), "{q:?}");
    }

    #[test]
    fn repair_peels_hangers_on() {
        // A 16-clique plus one vertex adjacent to only 4 members: the
        // component may include it via buddy edges, repair must peel it.
        let mut edges = Vec::new();
        for u in 0..16 {
            for v in (u + 1)..16 {
                edges.push((u, v));
            }
        }
        for v in 0..4 {
            edges.push((16, v));
        }
        let g = ClusterGraph::singletons(CommGraph::from_edges(17, &edges).unwrap());
        let cliques = vec![(0..17).collect::<Vec<_>>()];
        let (repaired, peeled) = repair_cliques(&g, cliques, 0.2, 0.5);
        assert_eq!(peeled, 1);
        assert_eq!(repaired[0], (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn oversized_component_is_trimmed() {
        let g = planted(1, 12);
        // Pretend the component contains everything including the tail.
        let cliques = vec![(0..24).collect::<Vec<_>>()];
        let (repaired, _) = repair_cliques(&g, cliques, 0.15, 0.5);
        // Only the true clique survives the internal-degree constraint.
        assert_eq!(repaired.len(), 1);
        assert_eq!(repaired[0], (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn empty_graph_yields_all_sparse() {
        let g = ClusterGraph::singletons(CommGraph::from_edges(5, &[]).unwrap());
        let acd = acd_oracle(&g, 0.1);
        assert_eq!(acd.n_cliques(), 0);
        assert_eq!(acd.sparse_vertices().len(), 5);
    }

    #[test]
    fn clique_of_and_is_sparse_agree() {
        let g = planted(2, 10);
        let acd = acd_oracle(&g, 0.15);
        for v in 0..g.n_vertices() {
            match acd.clique_of(v) {
                Some(c) => {
                    assert!(!acd.is_sparse(v));
                    assert!(acd.cliques[c].binary_search(&v).is_ok());
                }
                None => assert!(acd.is_sparse(v)),
            }
        }
    }
}
