//! External degrees, clique sizes and the anti-degree proxy (§4.1).
//!
//! Dense vertices approximate their external degree
//! `ẽ_v ∈ (1 ± δ) e_v` by fingerprinting with the predicate "neighbor
//! outside my almost-clique" (Lemma 5.7), compute `|K|` exactly and the
//! average `ẽ_K` by aggregation on a BFS tree of `K`, and derive the
//! anti-degree proxy of Equation (3):
//! `x_v = |K| − (Δ + 1) + ẽ_v  ∈  a_v − (Δ − deg v) ± δ e_v`
//! — anti-degrees themselves being uncomputable on cluster graphs.

use crate::acd::AlmostCliqueDecomp;
use cgc_cluster::ClusterNet;
use cgc_net::SeedStream;
use cgc_sketch::{approx_count_neighbors, CountingParams};

/// Degree-related quantities per vertex and per clique.
#[derive(Debug, Clone)]
pub struct DegreeProfile {
    /// `ẽ_v` — estimated external degree (0 for sparse vertices).
    pub e_est: Vec<f64>,
    /// `ẽ_K` — average estimated external degree per clique.
    pub e_avg: Vec<f64>,
    /// `|K|` per clique (exact).
    pub clique_size: Vec<usize>,
    /// `x_v` — Equation (3) anti-degree proxy (0 for sparse vertices).
    pub x_v: Vec<f64>,
    /// Exact external degree (oracle; for tests/experiments only).
    pub e_exact: Vec<usize>,
    /// Exact anti-degree `a_v = |K_v \ N(v)| − ` — oracle only.
    pub a_exact: Vec<usize>,
}

/// Computes the degree profile for a decomposition.
///
/// Charges: one fingerprint counting round (Lemma 5.7) plus `O(1)`
/// aggregation rounds per clique (run in parallel on vertex-disjoint
/// cliques, hence charged once).
pub fn degree_profile(
    net: &mut ClusterNet<'_>,
    acd: &AlmostCliqueDecomp,
    counting: &CountingParams,
    seeds: &SeedStream,
) -> DegreeProfile {
    let n = net.g.n_vertices();
    let delta = net.g.max_degree();
    net.set_phase("degrees");

    // ẽ_v by fingerprinting with the "external neighbor" predicate; the
    // predicate is link-computable because both endpoints' AC ids are known
    // to the link machines after the ACD leader broadcast.
    let est = approx_count_neighbors(net, counting, &seeds.child(21), 0, |v, u| {
        acd.clique_of(v).is_some() && acd.clique_of(v) != acd.clique_of(u)
    });
    let e_est: Vec<f64> = (0..n)
        .map(|v| if acd.is_sparse(v) { 0.0 } else { est[v] })
        .collect();

    // |K| exactly and ẽ_K by aggregation on a BFS tree spanning K.
    net.charge_full_rounds(3, 2 * net.id_bits());
    let mut e_avg = vec![0.0f64; acd.n_cliques()];
    let mut clique_size = vec![0usize; acd.n_cliques()];
    for (i, k) in acd.cliques.iter().enumerate() {
        clique_size[i] = k.len();
        let sum: f64 = k.iter().map(|&v| e_est[v]).sum();
        e_avg[i] = sum / k.len().max(1) as f64;
    }

    // x_v = |K| − (Δ+1) + ẽ_v (Equation 3).
    let x_v: Vec<f64> = (0..n)
        .map(|v| match acd.clique_of(v) {
            Some(c) => clique_size[c] as f64 - (delta as f64 + 1.0) + e_est[v],
            None => 0.0,
        })
        .collect();

    // Oracle quantities (no charge: analyst's view).
    let mut e_exact = vec![0usize; n];
    let mut a_exact = vec![0usize; n];
    for v in 0..n {
        if let Some(c) = acd.clique_of(v) {
            let k = &acd.cliques[c];
            let internal = net
                .g
                .neighbors(v)
                .iter()
                .filter(|&&u| k.binary_search(&u).is_ok())
                .count();
            e_exact[v] = net.g.degree(v) - internal;
            a_exact[v] = k.len() - 1 - internal;
        }
    }

    DegreeProfile {
        e_est,
        e_avg,
        clique_size,
        x_v,
        e_exact,
        a_exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acd::acd_oracle;
    use cgc_cluster::ClusterGraph;
    use cgc_net::CommGraph;

    /// Two 20-cliques with a perfect matching of 6 external edges between
    /// their first 6 members.
    fn cross_linked() -> ClusterGraph {
        let k = 20;
        let mut edges = Vec::new();
        for u in 0..k {
            for v in (u + 1)..k {
                edges.push((u, v));
                edges.push((u + k, v + k));
            }
        }
        for j in 0..6 {
            edges.push((j, j + k));
        }
        ClusterGraph::singletons(CommGraph::from_edges(2 * k, &edges).unwrap())
    }

    #[test]
    fn exact_quantities_are_correct() {
        let g = cross_linked();
        let acd = acd_oracle(&g, 0.2);
        assert_eq!(acd.n_cliques(), 2);
        let mut net = ClusterNet::with_log_budget(&g, 32);
        let p = degree_profile(
            &mut net,
            &acd,
            &CountingParams {
                xi: 0.1,
                t_factor: 40.0,
                min_trials: 512,
            },
            &SeedStream::new(1000),
        );
        // Members 0..6 of each clique have one external edge.
        assert_eq!(p.e_exact[0], 1);
        assert_eq!(p.e_exact[25], 1);
        assert_eq!(p.e_exact[10], 0);
        // Full cliques: anti-degree 0 everywhere.
        assert!(p.a_exact.iter().all(|&a| a == 0));
        assert_eq!(p.clique_size, vec![20, 20]);
    }

    #[test]
    fn estimates_are_near_exact() {
        let g = cross_linked();
        let acd = acd_oracle(&g, 0.2);
        let mut net = ClusterNet::with_log_budget(&g, 32);
        let p = degree_profile(
            &mut net,
            &acd,
            &CountingParams {
                xi: 0.1,
                t_factor: 60.0,
                min_trials: 1024,
            },
            &SeedStream::new(1001),
        );
        for v in 0..g.n_vertices() {
            let exact = p.e_exact[v] as f64;
            // Fingerprints with one contributing neighbor estimate within
            // a small constant factor; zero must estimate (near) zero.
            if exact == 0.0 {
                assert!(p.e_est[v] < 0.5, "v={v}: {}", p.e_est[v]);
            } else {
                assert!(
                    p.e_est[v] > 0.3 && p.e_est[v] < 4.0,
                    "v={v}: {}",
                    p.e_est[v]
                );
            }
        }
        // Average external degree: 6 of 20 members have e=1.
        for &ea in &p.e_avg {
            assert!(ea < 1.0, "e_avg {ea}");
        }
    }

    #[test]
    fn x_v_tracks_equation_three() {
        let g = cross_linked();
        let acd = acd_oracle(&g, 0.2);
        let mut net = ClusterNet::with_log_budget(&g, 32);
        let p = degree_profile(
            &mut net,
            &acd,
            &CountingParams {
                xi: 0.1,
                t_factor: 40.0,
                min_trials: 512,
            },
            &SeedStream::new(1002),
        );
        let delta = g.max_degree() as f64; // 20 (clique 19 + 1 external)
        for v in 0..6 {
            let expect = 20.0 - (delta + 1.0) + p.e_est[v];
            assert!((p.x_v[v] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_vertices_get_zero_profile() {
        // A path graph: everything sparse.
        let g = ClusterGraph::singletons(CommGraph::path(10));
        let acd = acd_oracle(&g, 0.15);
        let mut net = ClusterNet::with_log_budget(&g, 32);
        let p = degree_profile(
            &mut net,
            &acd,
            &CountingParams::default(),
            &SeedStream::new(1003),
        );
        assert!(p.e_est.iter().all(|&e| e == 0.0));
        assert!(p.x_v.iter().all(|&x| x == 0.0));
        assert!(p.e_avg.is_empty());
    }
}
