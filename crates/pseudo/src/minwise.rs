//! `(ε, s)`-min-wise independent hash functions (Definition C.1,
//! Lemma C.2).
//!
//! A family `H` of functions `[N] → [N]` is `(ε, s)`-min-wise independent
//! when for any `X ⊆ [N]`, `|X| ≤ s`, and `x ∉ X`:
//! `|Pr[h(x) < min h(X)] − 1/(|X|+1)| ≤ ε/(|X|+1)`.
//! By Lemma C.2 (Indyk), any `O(log 1/ε)`-wise independent family is
//! `(ε, s)`-min-wise for `s ≤ εN/C`. Descriptions take
//! `O(log N · log 1/ε)` bits. §6 uses these to let a random group sample a
//! near-uniform member of an anti-neighbor set by taking the min hash.

use crate::kwise::KWiseHash;
use rand::Rng;

/// A min-wise independent hash function `[N] → [R]` with `R = 4N²` to make
/// internal collisions unlikely (ties are broken by input id by callers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinWiseHash {
    inner: KWiseHash,
}

impl MinWiseHash {
    /// Samples a function suitable for `(ε, s)`-min-wise use on `[n]`.
    ///
    /// The independence degree is `max(2, ceil(c · log2(1/ε)))` with
    /// `c = 2`, following Lemma C.2.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not in `(0, 1)` or `n == 0`.
    pub fn new(rng: &mut impl Rng, eps: f64, n: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(n > 0, "universe must be nonempty");
        let k = (2.0 * (1.0 / eps).log2()).ceil().max(2.0) as usize;
        let range = (4 * n * n).max(4);
        MinWiseHash {
            inner: KWiseHash::new(rng, k, range),
        }
    }

    /// Evaluates the function.
    pub fn eval(&self, x: u64) -> u64 {
        self.inner.eval(x)
    }

    /// The member of `xs` with the smallest hash (ties by smaller id);
    /// `None` when `xs` is empty.
    pub fn argmin<'a, I>(&self, xs: I) -> Option<u64>
    where
        I: IntoIterator<Item = &'a u64>,
    {
        xs.into_iter()
            .map(|&x| (self.eval(x), x))
            .min()
            .map(|(_, x)| x)
    }

    /// Description length in bits.
    pub fn description_bits(&self) -> u64 {
        self.inner.description_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_net::SeedStream;

    #[test]
    fn argmin_is_deterministic_and_member() {
        let mut rng = SeedStream::new(9).rng_for(0, 0);
        let h = MinWiseHash::new(&mut rng, 0.25, 1000);
        let xs = vec![3u64, 77, 150, 999];
        let m = h.argmin(&xs).unwrap();
        assert!(xs.contains(&m));
        assert_eq!(h.argmin(&xs), Some(m));
        assert_eq!(h.argmin(&[]), None);
    }

    /// Empirical Definition C.1 check: each member of a set is the argmin
    /// with probability close to 1/|X| over random functions.
    #[test]
    fn min_location_approximately_uniform() {
        let s = SeedStream::new(10);
        let xs: Vec<u64> = vec![5, 17, 23, 42, 67, 88, 91, 120];
        let mut hits = vec![0usize; xs.len()];
        let fams = 6000;
        for f in 0..fams {
            let mut rng = s.rng_for(f, 0);
            let h = MinWiseHash::new(&mut rng, 0.25, 256);
            let m = h.argmin(&xs).unwrap();
            hits[xs.iter().position(|&x| x == m).unwrap()] += 1;
        }
        let expect = fams as f64 / xs.len() as f64;
        for (i, &c) in hits.iter().enumerate() {
            let ratio = c as f64 / expect;
            // Lemma C.2 promises (1 ± ε)/|X|; allow sampling noise on top.
            assert!((0.6..1.4).contains(&ratio), "element {i} ratio {ratio}");
        }
    }

    /// The §6 usage pattern: an outside element beats the set with
    /// probability ≈ 1/(|X|+1).
    #[test]
    fn outsider_wins_with_expected_rate() {
        let s = SeedStream::new(11);
        let xs: Vec<u64> = (0..15).collect();
        let outsider = 200u64;
        let mut wins = 0usize;
        let fams = 6000;
        for f in 0..fams {
            let mut rng = s.rng_for(f, 1);
            let h = MinWiseHash::new(&mut rng, 0.25, 256);
            let hx = h.eval(outsider);
            if xs.iter().all(|&x| h.eval(x) > hx) {
                wins += 1;
            }
        }
        let rate = wins as f64 / fams as f64;
        let expect = 1.0 / (xs.len() + 1) as f64;
        assert!(
            (rate - expect).abs() < 0.5 * expect + 0.01,
            "rate {rate} vs expected {expect}"
        );
    }

    #[test]
    fn description_fits_log_budget() {
        let mut rng = SeedStream::new(12).rng_for(0, 0);
        let h = MinWiseHash::new(&mut rng, 0.5, 1 << 20);
        // k = max(2, 2·log2(2)) = 2 coefficients: ~186 bits.
        assert!(h.description_bits() <= 4 * 61 + 64);
    }

    #[test]
    #[should_panic(expected = "eps must be in (0,1)")]
    fn invalid_eps_panics() {
        let mut rng = SeedStream::new(1).rng_for(0, 0);
        MinWiseHash::new(&mut rng, 1.5, 10);
    }
}
