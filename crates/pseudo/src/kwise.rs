//! k-wise independent polynomial hash families.
//!
//! A degree-`(k−1)` polynomial with uniform coefficients over the field
//! `F_p` (`p = 2^61 − 1`) is a k-wise independent function `F_p → F_p`;
//! reducing mod `m` gives a nearly uniform k-wise family `[N] → [m]` for
//! `N, m ≪ p`. Descriptions take `k · 61` bits, which is `O(k log n)`.

use rand::{Rng, RngExt};

/// The Mersenne prime `2^61 − 1`.
pub const MERSENNE_61: u64 = (1u64 << 61) - 1;

/// Multiplies two field elements mod `2^61 − 1` via 128-bit arithmetic.
#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    let prod = u128::from(a) * u128::from(b);
    let lo = (prod & u128::from(MERSENNE_61)) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo + hi;
    if s >= MERSENNE_61 {
        s -= MERSENNE_61;
    }
    s
}

/// A member of a k-wise independent hash family `[N] → [m]`.
///
/// # Example
///
/// ```
/// use cgc_pseudo::KWiseHash;
/// use cgc_net::SeedStream;
///
/// let mut rng = SeedStream::new(3).rng_for(0, 0);
/// let h = KWiseHash::new(&mut rng, 4, 100);
/// assert!(h.eval(12345) < 100);
/// assert_eq!(h.eval(7), h.eval(7)); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWiseHash {
    coeffs: Vec<u64>,
    m: u64,
}

impl KWiseHash {
    /// Samples a uniform member with independence `k` and range `[m]`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `m == 0`.
    pub fn new(rng: &mut impl Rng, k: usize, m: u64) -> Self {
        assert!(k > 0, "independence k must be positive");
        assert!(m > 0, "range m must be positive");
        let coeffs = (0..k).map(|_| rng.random_range(0..MERSENNE_61)).collect();
        KWiseHash { coeffs, m }
    }

    /// Evaluates the hash at `x`.
    pub fn eval(&self, x: u64) -> u64 {
        let x = x % MERSENNE_61;
        // Horner evaluation.
        let mut acc: u64 = 0;
        for &c in self.coeffs.iter().rev() {
            acc = mul_mod(acc, x);
            acc += c;
            if acc >= MERSENNE_61 {
                acc -= MERSENNE_61;
            }
        }
        acc % self.m
    }

    /// Independence parameter `k`.
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Range size `m`.
    pub fn range(&self) -> u64 {
        self.m
    }

    /// Description length in bits (`k` field elements + the range).
    pub fn description_bits(&self) -> u64 {
        self.coeffs.len() as u64 * 61 + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_net::SeedStream;

    #[test]
    fn mul_mod_agrees_with_naive() {
        let cases = [
            (0u64, 0u64),
            (1, MERSENNE_61 - 1),
            (123456789, 987654321),
            (MERSENNE_61 - 1, MERSENNE_61 - 1),
        ];
        for (a, b) in cases {
            let expect = ((u128::from(a) * u128::from(b)) % u128::from(MERSENNE_61)) as u64;
            assert_eq!(mul_mod(a, b), expect, "a={a} b={b}");
        }
    }

    #[test]
    fn range_respected() {
        let mut rng = SeedStream::new(1).rng_for(0, 0);
        let h = KWiseHash::new(&mut rng, 6, 17);
        for x in 0..1000u64 {
            assert!(h.eval(x) < 17);
        }
    }

    #[test]
    fn roughly_uniform_marginals() {
        let mut rng = SeedStream::new(2).rng_for(0, 0);
        let m = 8u64;
        let h = KWiseHash::new(&mut rng, 4, m);
        let mut counts = vec![0usize; m as usize];
        let samples = 8000u64;
        for x in 0..samples {
            counts[h.eval(x) as usize] += 1;
        }
        let expect = samples as f64 / m as f64;
        for (b, &c) in counts.iter().enumerate() {
            let ratio = c as f64 / expect;
            assert!((0.85..1.15).contains(&ratio), "bucket {b} ratio {ratio}");
        }
    }

    #[test]
    fn pairwise_collision_rate_near_one_over_m() {
        let s = SeedStream::new(3);
        let m = 64u64;
        let mut collisions = 0usize;
        let fams = 2000;
        for f in 0..fams {
            let mut rng = s.rng_for(f, 0);
            let h = KWiseHash::new(&mut rng, 2, m);
            if h.eval(11) == h.eval(42) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / fams as f64;
        let expect = 1.0 / m as f64;
        assert!(rate < 3.0 * expect + 0.01, "collision rate {rate}");
    }

    #[test]
    fn description_bits_scale_with_k() {
        let mut rng = SeedStream::new(4).rng_for(0, 0);
        let h2 = KWiseHash::new(&mut rng, 2, 10);
        let h8 = KWiseHash::new(&mut rng, 8, 10);
        assert!(h8.description_bits() > h2.description_bits());
        assert_eq!(h2.independence(), 2);
        assert_eq!(h8.range(), 10);
    }

    #[test]
    #[should_panic(expected = "independence k must be positive")]
    fn zero_k_panics() {
        let mut rng = SeedStream::new(5).rng_for(0, 0);
        KWiseHash::new(&mut rng, 0, 10);
    }
}
