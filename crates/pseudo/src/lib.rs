//! Pseudo-random tools (paper Appendix C).
//!
//! * [`KWiseHash`] — k-wise independent polynomial hash families over the
//!   Mersenne prime `2^61 − 1`; describable in `O(k log N)` bits.
//! * [`MinWiseHash`] — `(ε, s)`-min-wise independent functions obtained
//!   from `O(log 1/ε)`-wise independence (Lemma C.2); used in §6 to sample
//!   a near-uniform anti-neighbor out of a set known only distributively.
//! * [`pairwise`] — ε-almost pairwise independent families (Definition C.3)
//!   describable in `O(log log N + log M + log 1/ε)` bits.
//! * [`RepFamily`] — representative set families (Definition C.5, Lemma
//!   C.6): globally known families of `s`-sized subsets of a color space
//!   such that a random member approximates the density of *every* large
//!   test set; they let `MultiColorTrial` describe `Θ(log n)` color
//!   samples with an `O(log n)`-bit index (§D.3).

pub mod kwise;
pub mod minwise;
pub mod pairwise;
pub mod repsets;

pub use kwise::KWiseHash;
pub use minwise::MinWiseHash;
pub use pairwise::PairwiseHash;
pub use repsets::{RepFamily, RepParams};
