//! Representative set families (Definition C.5, Lemma C.6).
//!
//! An `(α, δ, ν)`-representative family over a universe of size `k` is a
//! collection `F = {S_1, …, S_t}` of `s`-sized subsets such that for every
//! test set `T`:
//!
//! * if `|T| ≥ δk`, a random `S_i` approximates `T`'s density within a
//!   `(1 ± α)` factor with probability `1 − ν`;
//! * if `|T| < δk`, a random `S_i` does not overestimate the density beyond
//!   `(1 + α)δ` with probability `1 − ν`.
//!
//! Lemma C.6 proves such families exist with `t = Θ(k/ν + k log k)` and
//! `s = Θ(α^{-2} δ^{-1} log(1/ν))`; the proof is probabilistic — i.i.d.
//! uniform subsets work — so the implementation *is* the existence proof:
//! sets are generated deterministically from `(family seed, index)`, and a
//! vertex describes its entire sample by the `O(log t)`-bit index. This is
//! how `MultiColorTrial` ships `Θ(log n)` color trials in one message.

use cgc_net::SeedStream;
use rand::RngExt;

/// Size/count parameters for a representative family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepParams {
    /// Approximation slack `α`.
    pub alpha: f64,
    /// Density threshold `δ`.
    pub delta: f64,
    /// Failure probability `ν`.
    pub nu: f64,
}

impl RepParams {
    /// Set size `s = Θ(α^{-2} δ^{-1} log(1/ν))` from Lemma C.6.
    pub fn set_size(&self) -> usize {
        let s = (1.0 / (self.alpha * self.alpha)) * (1.0 / self.delta) * (1.0 / self.nu).ln();
        (s.ceil() as usize).max(4)
    }

    /// Family size `t`; `Θ(k/ν + k log k)` in the lemma, capped here to
    /// keep index descriptions within `O(log n)` bits (the family is
    /// globally known, only indices travel).
    pub fn family_size(&self, k: usize) -> usize {
        let kf = k.max(2) as f64;
        let t = kf / self.nu + kf * kf.ln();
        (t.ceil() as usize).clamp(64, 1 << 20)
    }
}

/// A deterministic pseudo-random representative family over `[k]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepFamily {
    universe: usize,
    set_size: usize,
    family_size: usize,
    seeds: SeedStream,
}

impl RepFamily {
    /// Creates a family of `family_size` subsets of `[universe]`, each of
    /// `set_size` elements, deterministically derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `universe == 0`, `set_size == 0` or `family_size == 0`.
    pub fn new(universe: usize, set_size: usize, family_size: usize, seed: u64) -> Self {
        assert!(universe > 0, "universe must be nonempty");
        assert!(set_size > 0, "set size must be positive");
        assert!(family_size > 0, "family must be nonempty");
        RepFamily {
            universe,
            set_size: set_size.min(universe),
            family_size,
            seeds: SeedStream::new(seed),
        }
    }

    /// Builds from Lemma C.6 parameters.
    pub fn with_params(universe: usize, params: RepParams, seed: u64) -> Self {
        Self::new(
            universe,
            params.set_size(),
            params.family_size(universe),
            seed,
        )
    }

    /// Universe size `k`.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Per-set size `s`.
    pub fn set_size(&self) -> usize {
        self.set_size
    }

    /// Family size `t`.
    pub fn family_size(&self) -> usize {
        self.family_size
    }

    /// Bits to describe an index into the family.
    pub fn index_bits(&self) -> u64 {
        (usize::BITS - self.family_size.leading_zeros()) as u64
    }

    /// Materializes the `i`-th set (sorted, distinct elements).
    ///
    /// # Panics
    ///
    /// Panics if `i >= family_size`.
    pub fn set(&self, i: usize) -> Vec<usize> {
        assert!(i < self.family_size, "family index out of range");
        let mut rng = self.seeds.rng_for(i as u64, 0xC0FFEE);
        // Partial Fisher–Yates over an implicit [0, k): sample without
        // replacement via a small map.
        let mut chosen = Vec::with_capacity(self.set_size);
        let mut swapped: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for j in 0..self.set_size {
            let r = rng.random_range(j..self.universe);
            let vr = *swapped.get(&r).unwrap_or(&r);
            let vj = *swapped.get(&j).unwrap_or(&j);
            swapped.insert(r, vj);
            chosen.push(vr);
        }
        chosen.sort_unstable();
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn sets_are_valid_subsets() {
        let f = RepFamily::new(100, 10, 50, 5);
        for i in 0..f.family_size() {
            let s = f.set(i);
            assert_eq!(s.len(), 10);
            assert!(s.iter().all(|&x| x < 100));
            assert!(s.windows(2).all(|w| w[0] < w[1]), "distinct & sorted");
        }
    }

    #[test]
    fn deterministic_by_index() {
        let f1 = RepFamily::new(64, 8, 16, 9);
        let f2 = RepFamily::new(64, 8, 16, 9);
        for i in 0..16 {
            assert_eq!(f1.set(i), f2.set(i));
        }
    }

    /// Equation (22): a random member approximates the density of a large
    /// test set within (1 ± α), most of the time.
    #[test]
    fn density_approximation_for_large_sets() {
        let k = 200usize;
        let params = RepParams {
            alpha: 0.5,
            delta: 0.25,
            nu: 0.05,
        };
        let f = RepFamily::with_params(k, params, 31);
        let test: Vec<bool> = (0..k).map(|x| x % 3 != 0).collect(); // |T| ≈ 2k/3
        let density = test.iter().filter(|&&b| b).count() as f64 / k as f64;

        let mut ok = 0usize;
        let trials = 500usize;
        let seeds = cgc_net::SeedStream::new(32);
        for tr in 0..trials {
            let mut rng = seeds.rng_for(tr as u64, 0);
            let i = rng.random_range(0..f.family_size());
            let s = f.set(i);
            let inter = s.iter().filter(|&&x| test[x]).count() as f64 / s.len() as f64;
            if (inter - density).abs() <= params.alpha * density {
                ok += 1;
            }
        }
        let rate = ok as f64 / trials as f64;
        assert!(rate >= 0.9, "approximation rate {rate}");
    }

    /// Equation (23): small test sets are not wildly overestimated.
    #[test]
    fn no_overestimate_for_small_sets() {
        let k = 200usize;
        let params = RepParams {
            alpha: 0.5,
            delta: 0.25,
            nu: 0.05,
        };
        let f = RepFamily::with_params(k, params, 33);
        // |T| = 10 < δk = 50.
        let test: Vec<bool> = (0..k).map(|x| x < 10).collect();

        let mut ok = 0usize;
        let trials = 500usize;
        let seeds = cgc_net::SeedStream::new(34);
        for tr in 0..trials {
            let mut rng = seeds.rng_for(tr as u64, 0);
            let i = rng.random_range(0..f.family_size());
            let s = f.set(i);
            let inter = s.iter().filter(|&&x| test[x]).count() as f64 / s.len() as f64;
            if inter <= (1.0 + params.alpha) * params.delta {
                ok += 1;
            }
        }
        let rate = ok as f64 / trials as f64;
        assert!(rate >= 0.9, "no-overestimate rate {rate}");
    }

    #[test]
    fn index_bits_are_logarithmic() {
        let f = RepFamily::new(1000, 16, 1 << 12, 1);
        assert_eq!(f.index_bits(), 13);
    }

    #[test]
    fn set_size_capped_by_universe() {
        let f = RepFamily::new(5, 100, 4, 1);
        assert_eq!(f.set_size(), 5);
        assert_eq!(f.set(0).len(), 5);
    }

    #[test]
    #[should_panic(expected = "family index out of range")]
    fn out_of_range_index_panics() {
        let f = RepFamily::new(10, 2, 4, 1);
        f.set(4);
    }
}
