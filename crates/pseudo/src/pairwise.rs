//! ε-almost pairwise independent families (Definition C.3, Theorem C.4).
//!
//! For every `x₁ ≠ x₂` and targets `y₁, y₂`:
//! `Pr[h(x₁) = y₁ ∧ h(x₂) = y₂] ≤ (1 + ε)/M²`.
//! An affine map over a prime field, reduced mod `M`, achieves this with a
//! description of `O(log N + log M)` bits; the theorem's tighter
//! `O(log log N + log M + log 1/ε)` construction is not needed at our
//! scales, which we document rather than over-engineer.

use crate::kwise::{KWiseHash, MERSENNE_61};
use rand::Rng;

/// An almost-pairwise independent hash `[N] → [m]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairwiseHash {
    inner: KWiseHash,
}

impl PairwiseHash {
    /// Samples a member with range `[m]`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(rng: &mut impl Rng, m: u64) -> Self {
        PairwiseHash {
            inner: KWiseHash::new(rng, 2, m),
        }
    }

    /// Evaluates the hash.
    pub fn eval(&self, x: u64) -> u64 {
        self.inner.eval(x)
    }

    /// Range size.
    pub fn range(&self) -> u64 {
        self.inner.range()
    }

    /// Description bits (two field elements + range).
    pub fn description_bits(&self) -> u64 {
        self.inner.description_bits()
    }

    /// Whether the hash is collision-free on the given inputs — the §7.1
    /// "free colors" step needs a hash with no collisions on the `ℓ_s`
    /// smallest palette colors; callers resample until this returns true.
    pub fn collision_free(&self, xs: &[u64]) -> bool {
        let mut seen: Vec<u64> = xs.iter().map(|&x| self.eval(x)).collect();
        seen.sort_unstable();
        seen.windows(2).all(|w| w[0] != w[1])
    }

    /// The field size backing the construction.
    pub fn field_size() -> u64 {
        MERSENNE_61
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_net::SeedStream;

    #[test]
    fn pair_probability_bounded() {
        let s = SeedStream::new(20);
        let m = 16u64;
        let mut joint = 0usize;
        let fams = 20_000;
        for f in 0..fams {
            let mut rng = s.rng_for(f, 0);
            let h = PairwiseHash::new(&mut rng, m);
            if h.eval(3) == 5 && h.eval(9) == 11 {
                joint += 1;
            }
        }
        let rate = joint as f64 / fams as f64;
        let bound = 2.0 / (m as f64 * m as f64); // (1+ε)/M² with slack
        assert!(rate <= bound + 0.005, "joint rate {rate} vs bound {bound}");
    }

    #[test]
    fn collision_free_resampling_succeeds() {
        let s = SeedStream::new(21);
        // Hash 20 values into a poly-log range; some functions collide,
        // but resampling quickly finds a collision-free one.
        let xs: Vec<u64> = (0..20).map(|i| i * 37 + 5).collect();
        let mut found = false;
        for f in 0..50 {
            let mut rng = s.rng_for(f, 0);
            let h = PairwiseHash::new(&mut rng, 4096);
            if h.collision_free(&xs) {
                found = true;
                break;
            }
        }
        assert!(found, "no collision-free hash in 50 samples");
    }

    #[test]
    fn collision_detection_works() {
        let s = SeedStream::new(22);
        let mut rng = s.rng_for(0, 0);
        let h = PairwiseHash::new(&mut rng, 2);
        // 5 inputs into range 2 must collide.
        let xs: Vec<u64> = (0..5).collect();
        assert!(!h.collision_free(&xs));
    }
}
