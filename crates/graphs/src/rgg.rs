//! Random geometric conflict graphs (unit square, hard radius).
//!
//! `n` points are dropped uniformly in `[0, 1)²` and two vertices conflict
//! iff their Euclidean distance is at most `radius` — the standard model
//! of radio-interference conflict graphs. The resulting specs are
//! *spatially clustered*: triangles abound, degrees concentrate around
//! `n π r²`, and the cluster layouts of [`crate::realize`] then stretch
//! them over multi-machine topologies.
//!
//! Edge detection buckets the points into a grid of `radius`-sized cells
//! and scans each vertex's 3×3 cell neighborhood — `O(n · E[deg])` — with
//! the rows sharded across threads through the
//! [`crate::pipeline::ShardedEdgeSource`] scaffolding. Point positions are
//! drawn sequentially from one seeded stream before the sharded phase, so
//! the spec is a pure function of `(n, radius, seed)`, independent of the
//! thread count.

use crate::layouts::HSpec;
use crate::pipeline::ShardedEdgeSource;
use cgc_net::{ParallelConfig, SeedStream};
use rand::RngExt;

/// Samples a random geometric spec; deterministic in `(n, radius, seed)`
/// and independent of the thread count in `par`.
///
/// # Panics
///
/// Panics if `n == 0` or `radius` is not in `(0, 1]`.
pub fn geometric_spec(n: usize, radius: f64, seed: u64, par: &ParallelConfig) -> HSpec {
    geometric_runs(n, radius, seed, par).into_hspec(par)
}

/// The raw per-shard edge runs of a geometric sample — the generation
/// half of [`geometric_spec`], before canonicalization.
///
/// # Panics
///
/// As [`geometric_spec`].
pub(crate) fn geometric_runs(
    n: usize,
    radius: f64,
    seed: u64,
    par: &ParallelConfig,
) -> ShardedEdgeSource {
    assert!(n > 0, "empty spec");
    assert!(
        radius > 0.0 && radius <= 1.0,
        "radius must be in (0, 1], got {radius}"
    );
    let mut rng = SeedStream::new(seed).rng_for(0x5247_4730, 0);
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();

    // Grid of radius-sized cells; cell(v) = (x / r, y / r) clamped.
    let cells_per_side = (1.0 / radius).ceil() as usize;
    let cell_of = |p: (f64, f64)| -> (usize, usize) {
        let cx = ((p.0 / radius) as usize).min(cells_per_side - 1);
        let cy = ((p.1 / radius) as usize).min(cells_per_side - 1);
        (cx, cy)
    };
    // Counting-sort the vertex ids into a CSR over cells (stable: within a
    // cell, ids ascend).
    let n_cells = cells_per_side * cells_per_side;
    let mut counts = vec![0usize; n_cells + 1];
    for &p in &points {
        let (cx, cy) = cell_of(p);
        counts[cy * cells_per_side + cx + 1] += 1;
    }
    for i in 0..n_cells {
        counts[i + 1] += counts[i];
    }
    let mut bucket = vec![0usize; n];
    let mut cursor = counts.clone();
    for (v, &p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        let c = cy * cells_per_side + cx;
        bucket[cursor[c]] = v;
        cursor[c] += 1;
    }

    let r2 = radius * radius;
    let points = &points;
    let counts = &counts;
    let bucket = &bucket;
    ShardedEdgeSource::from_rows(n, par, move |u, out| {
        let pu = points[u];
        let (cx, cy) = cell_of(pu);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells_per_side as i64 || ny >= cells_per_side as i64 {
                    continue;
                }
                let c = ny as usize * cells_per_side + nx as usize;
                for &v in &bucket[counts[c]..counts[c + 1]] {
                    if v <= u {
                        continue;
                    }
                    let (ddx, ddy) = (points[v].0 - pu.0, points[v].1 - pu.1);
                    if ddx * ddx + ddy * ddy <= r2 {
                        out.push((u, v));
                    }
                }
            }
        }
    })
}

/// The radius giving expected average degree `target` at size `n`
/// (`n π r² = target`), clamped to `(0, 1]`.
pub fn radius_for_avg_degree(n: usize, target: f64) -> f64 {
    assert!(n > 0 && target > 0.0, "need positive n and target degree");
    (target / (n as f64 * std::f64::consts::PI)).sqrt().min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_concentrate_around_n_pi_r_squared() {
        let n = 3000;
        let r = radius_for_avg_degree(n, 9.0);
        let h = geometric_spec(n, r, 5, &ParallelConfig::serial());
        let avg = 2.0 * h.edges.len() as f64 / n as f64;
        // Boundary effects depress the average a little below 9.
        assert!((5.0..11.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn grid_scan_matches_brute_force() {
        let n = 250;
        let r = 0.13;
        let h = geometric_spec(n, r, 9, &ParallelConfig::serial());
        // Re-derive the points exactly as the generator does.
        let mut rng = SeedStream::new(9).rng_for(0x5247_4730, 0);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        let mut brute = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let (dx, dy) = (pts[v].0 - pts[u].0, pts[v].1 - pts[u].1);
                if dx * dx + dy * dy <= r * r {
                    brute.push((u, v));
                }
            }
        }
        assert_eq!(h.edges, brute);
    }

    #[test]
    fn thread_count_does_not_change_the_graph() {
        let reference = geometric_spec(900, 0.06, 13, &ParallelConfig::serial());
        for threads in [2, 4, 8] {
            let got = geometric_spec(900, 0.06, 13, &ParallelConfig::with_threads(threads));
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn deterministic_in_seed_and_sensitive_to_it() {
        let par = ParallelConfig::serial();
        assert_eq!(
            geometric_spec(300, 0.1, 2, &par),
            geometric_spec(300, 0.1, 2, &par)
        );
        assert_ne!(
            geometric_spec(300, 0.1, 2, &par),
            geometric_spec(300, 0.1, 3, &par)
        );
    }

    #[test]
    fn radius_one_is_near_complete() {
        let h = geometric_spec(40, 1.0, 1, &ParallelConfig::serial());
        // Unit square diameter is sqrt(2) > 1, so not complete, but dense.
        assert!(h.edges.len() > 40 * 39 / 4, "edges {}", h.edges.len());
    }

    #[test]
    #[should_panic(expected = "radius must be in")]
    fn zero_radius_rejected() {
        geometric_spec(10, 0.0, 1, &ParallelConfig::serial());
    }
}
