//! Erdős–Rényi `G(n, p)` conflict graphs.

use crate::layouts::HSpec;
use cgc_net::SeedStream;
use rand::RngExt;

/// Samples a `G(n, p)` spec.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp_spec(n: usize, p: f64, seed: u64) -> HSpec {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let mut rng = SeedStream::new(seed).rng_for(0x67_6E_70, 0);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < p {
                edges.push((u, v));
            }
        }
    }
    HSpec::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_concentrates() {
        let n = 120;
        let p = 0.1;
        let h = gnp_spec(n, p, 4);
        let expect = p * (n * (n - 1) / 2) as f64;
        let m = h.edges.len() as f64;
        assert!(
            (m - expect).abs() < 0.35 * expect,
            "m = {m}, expect ≈ {expect}"
        );
    }

    #[test]
    fn extreme_probabilities() {
        assert!(gnp_spec(20, 0.0, 1).edges.is_empty());
        assert_eq!(gnp_spec(20, 1.0, 1).edges.len(), 190);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(gnp_spec(50, 0.2, 7), gnp_spec(50, 0.2, 7));
        assert_ne!(gnp_spec(50, 0.2, 7), gnp_spec(50, 0.2, 8));
    }
}
