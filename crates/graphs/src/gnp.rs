//! Erdős–Rényi `G(n, p)` conflict graphs, sampled by a row-sharded
//! skip walk.
//!
//! The naive sampler flips one coin per vertex pair — `O(n²)` work that
//! dominated instance setup long before the edges themselves mattered.
//! For a Bernoulli(`p`) process the gap between consecutive successes is
//! geometric, so each row `u` instead *jumps* over its failures: draw
//! `skip ~ ⌊ln(1 − r) / ln(1 − p)⌋`, land on the next accepted neighbor,
//! repeat — `O(deg + 1)` expected work per row, `O(m + n)` per instance.
//! This is the constant-probability case of the Miller–Hagberg walk the
//! power-law sampler ([`crate::powerlaw`]) already uses.
//!
//! Each row draws from its own [`SeedStream`]-derived substream, so
//! generation shards across threads through the
//! [`crate::pipeline::ShardedEdgeSource`] scaffolding with output that is
//! a pure function of `(n, p, seed)` — independent of the thread count.
//! (The per-row protocol means instances differ from the pre-skip-walk
//! sampler's for the same seed; `tests/gen_equivalence.rs` pins the new
//! stream's distribution against the old sweep.)

use crate::layouts::HSpec;
use crate::pipeline::ShardedEdgeSource;
use cgc_net::{ParallelConfig, SeedStream};
use rand::RngExt;

/// Samples a `G(n, p)` spec sequentially.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp_spec(n: usize, p: f64, seed: u64) -> HSpec {
    gnp_spec_with(n, p, seed, &ParallelConfig::serial())
}

/// [`gnp_spec`] with row generation sharded over `par`'s threads;
/// deterministic in `(n, p, seed)` and independent of the thread count.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp_spec_with(n: usize, p: f64, seed: u64, par: &ParallelConfig) -> HSpec {
    gnp_runs(n, p, seed, par).into_hspec(par)
}

/// The raw per-shard edge runs of a `G(n, p)` sample — the generation
/// half of [`gnp_spec_with`], before canonicalization.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub(crate) fn gnp_runs(n: usize, p: f64, seed: u64, par: &ParallelConfig) -> ShardedEdgeSource {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let seeds = SeedStream::new(seed);
    // Row u owns the pairs {u} × (u+1..n): its expected work is
    // (n - 1 - u)·p accepted edges plus one terminating draw, so shards
    // balance by that mass — an even row split would serialize shard 0 on
    // the long early rows.
    let weights: Vec<f64> = (0..n).map(|u| (n - 1 - u) as f64 * p + 1.0).collect();
    ShardedEdgeSource::from_rows_weighted(n, par, Some(&weights), move |u, out| {
        if p <= 0.0 {
            return;
        }
        if p >= 1.0 {
            out.extend((u + 1..n).map(|v| (u, v)));
            return;
        }
        let mut rng = seeds.rng_for(0x67_6E_70, u as u64);
        // ln(1 - p) < 0; skip = ⌊ln(1 - r) / ln(1 - p)⌋ is Geometric(p):
        // the number of rejected pairs before the next accepted one.
        // ln_1p keeps the denominator nonzero (and accurate) for p below
        // f64 epsilon, where `(1.0 - p).ln()` rounds to 0.0 and the walk
        // would invert into accept-everything.
        let log_q = (-p).ln_1p();
        let mut v = u + 1;
        while v < n {
            let r: f64 = rng.random();
            let skip = ((1.0 - r).ln() / log_q).floor();
            if skip >= (n - v) as f64 {
                break;
            }
            v += skip as usize;
            out.push((u, v));
            v += 1;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_concentrates() {
        let n = 120;
        let p = 0.1;
        let h = gnp_spec(n, p, 4);
        let expect = p * (n * (n - 1) / 2) as f64;
        let m = h.edges.len() as f64;
        assert!(
            (m - expect).abs() < 0.35 * expect,
            "m = {m}, expect ≈ {expect}"
        );
    }

    #[test]
    fn extreme_probabilities() {
        assert!(gnp_spec(20, 0.0, 1).edges.is_empty());
        assert_eq!(gnp_spec(20, 1.0, 1).edges.len(), 190);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(gnp_spec(50, 0.2, 7), gnp_spec(50, 0.2, 7));
        assert_ne!(gnp_spec(50, 0.2, 7), gnp_spec(50, 0.2, 8));
    }

    #[test]
    fn thread_count_does_not_change_the_graph() {
        let reference = gnp_spec(400, 0.04, 11);
        for threads in [2, 4, 8] {
            let got = gnp_spec_with(400, 0.04, 11, &ParallelConfig::with_threads(threads));
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn subnormal_probabilities_stay_sparse() {
        // Regression: with log_q computed as (1.0 - p).ln(), any p below
        // f64 epsilon rounded the denominator to 0.0 and the skip walk
        // accepted every pair — the complete graph instead of ~0 edges.
        for p in [1e-18, 1e-12, f64::EPSILON / 4.0] {
            let h = gnp_spec(200, p, 5);
            assert!(
                h.edges.len() <= 1,
                "p={p}: got {} edges, expected ~0",
                h.edges.len()
            );
        }
    }

    #[test]
    fn rows_emit_sorted_unique_neighbors() {
        // The skip walk advances strictly, so each row's run is already
        // sorted and duplicate-free — canonicalization never drops edges.
        let src = gnp_runs(200, 0.15, 9, &ParallelConfig::serial());
        assert_eq!(src.total_edges(), gnp_spec(200, 0.15, 9).edges.len());
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn out_of_range_probability_rejected() {
        gnp_spec(10, 1.5, 1);
    }
}
