//! Bottleneck-link instances (Figures 2 and 3, experiment E17).
//!
//! Each cluster is a long path of machines with a single *bridge* link in
//! the middle; inter-cluster links attach only at the path's two ends,
//! with lower-indexed neighbor clusters wired to the left end and
//! higher-indexed ones to the right. Any information flow between the two
//! halves of a cluster squeezes through the `O(log n)`-bit bridge —
//! exactly the set-intersection hard instance of Figure 2. The coloring
//! algorithm must still finish within budget because it only ever moves
//! aggregates, never raw neighbor lists.

use crate::pipeline::ShardedEdgeSource;
use cgc_cluster::{ClusterGraph, ParallelConfig};
use cgc_net::CommGraph;

/// Builds the adversarial layout for a complete conflict graph on
/// `n_clusters` clusters, each a path of `path_len ≥ 2` machines.
///
/// # Panics
///
/// Panics if `n_clusters == 0` or `path_len < 2`.
pub fn bottleneck_instance(n_clusters: usize, path_len: usize) -> ClusterGraph {
    bottleneck_instance_with(n_clusters, path_len, &ParallelConfig::serial())
}

/// [`bottleneck_instance`] with the whole pipeline — wiring generation,
/// edge canonicalization and the [`ClusterGraph::build_with`] phases —
/// sharded over `par`'s threads (bit-identical output at any count).
pub fn bottleneck_instance_with(
    n_clusters: usize,
    path_len: usize,
    par: &ParallelConfig,
) -> ClusterGraph {
    let (n_machines, runs, assignment) = bottleneck_runs(n_clusters, path_len, par);
    let comm = CommGraph::from_edge_runs_with(n_machines, &runs.run_slices(), par)
        .expect("valid adversarial instance");
    ClusterGraph::build_with(comm, assignment, par).expect("paths are connected")
}

/// The raw generation half of [`bottleneck_instance_with`]: machine
/// count, per-shard edge runs (cluster `c` emits its own path wiring and
/// its links to every higher cluster — a pure function of `c`) and the
/// machine→cluster assignment.
///
/// # Panics
///
/// Panics if `n_clusters == 0` or `path_len < 2`.
pub(crate) fn bottleneck_runs(
    n_clusters: usize,
    path_len: usize,
    par: &ParallelConfig,
) -> (usize, ShardedEdgeSource, Vec<usize>) {
    assert!(n_clusters > 0, "need clusters");
    assert!(path_len >= 2, "paths need two ends");
    let m = path_len;
    let n_machines = n_clusters * m;
    // Cluster c owns m - 1 path edges plus n_clusters - 1 - c outgoing
    // links; weight the row split by that mass so the link-heavy head
    // does not serialize shard 0.
    let weights: Vec<f64> = (0..n_clusters)
        .map(|c| (m - 1 + (n_clusters - 1 - c)) as f64 + 1.0)
        .collect();
    let runs = ShardedEdgeSource::from_rows_weighted(n_clusters, par, Some(&weights), |c, out| {
        let base = c * m;
        for j in 0..(m - 1) {
            out.push((base + j, base + j + 1));
        }
        // Complete conflict graph; attachment by index order: c (lower)
        // uses its RIGHT end, every higher cluster its LEFT end.
        for v in (c + 1)..n_clusters {
            out.push((base + m - 1, v * m));
        }
    });
    let assignment: Vec<usize> = (0..n_machines).map(|i| i / m).collect();
    (n_machines, runs, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_graph_is_complete() {
        let g = bottleneck_instance(5, 6);
        assert_eq!(g.n_vertices(), 5);
        for u in 0..5 {
            for v in (u + 1)..5 {
                assert!(g.has_edge(u, v), "missing ({u},{v})");
            }
        }
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn dilation_matches_path_length() {
        let g = bottleneck_instance(3, 10);
        assert_eq!(g.dilation(), 9);
    }

    #[test]
    fn links_attach_at_ends_only() {
        let g = bottleneck_instance(4, 8);
        for &(mu, mv, cu, cv) in g.links() {
            assert!(cu < cv);
            assert_eq!(mu % 8, 7, "lower cluster uses right end");
            assert_eq!(mv % 8, 0, "higher cluster uses left end");
        }
    }

    #[test]
    fn single_links_between_clusters() {
        let g = bottleneck_instance(6, 4);
        for u in 0..6 {
            for v in (u + 1)..6 {
                assert_eq!(g.link_multiplicity(u, v), 1);
            }
        }
    }
}
