//! Bottleneck-link instances (Figures 2 and 3, experiment E17).
//!
//! Each cluster is a long path of machines with a single *bridge* link in
//! the middle; inter-cluster links attach only at the path's two ends,
//! with lower-indexed neighbor clusters wired to the left end and
//! higher-indexed ones to the right. Any information flow between the two
//! halves of a cluster squeezes through the `O(log n)`-bit bridge —
//! exactly the set-intersection hard instance of Figure 2. The coloring
//! algorithm must still finish within budget because it only ever moves
//! aggregates, never raw neighbor lists.

use cgc_cluster::{ClusterGraph, ParallelConfig};
use cgc_net::CommGraph;

/// Builds the adversarial layout for a complete conflict graph on
/// `n_clusters` clusters, each a path of `path_len ≥ 2` machines.
///
/// # Panics
///
/// Panics if `n_clusters == 0` or `path_len < 2`.
pub fn bottleneck_instance(n_clusters: usize, path_len: usize) -> ClusterGraph {
    bottleneck_instance_with(n_clusters, path_len, &ParallelConfig::serial())
}

/// [`bottleneck_instance`] with the [`ClusterGraph::build_with`] phases
/// sharded over `par`'s threads (bit-identical output at any count).
pub fn bottleneck_instance_with(
    n_clusters: usize,
    path_len: usize,
    par: &ParallelConfig,
) -> ClusterGraph {
    assert!(n_clusters > 0, "need clusters");
    assert!(path_len >= 2, "paths need two ends");
    let m = path_len;
    let n_machines = n_clusters * m;
    let mut edges = Vec::new();
    for c in 0..n_clusters {
        let base = c * m;
        for j in 0..(m - 1) {
            edges.push((base + j, base + j + 1));
        }
    }
    // Complete conflict graph; attachment by index order.
    for u in 0..n_clusters {
        for v in (u + 1)..n_clusters {
            // u (lower) uses its RIGHT end, v (higher) its LEFT end.
            let mu = u * m + (m - 1);
            let mv = v * m;
            edges.push((mu, mv));
        }
    }
    let comm = CommGraph::from_edges(n_machines, &edges).expect("valid adversarial instance");
    let assignment: Vec<usize> = (0..n_machines).map(|i| i / m).collect();
    ClusterGraph::build_with(comm, assignment, par).expect("paths are connected")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_graph_is_complete() {
        let g = bottleneck_instance(5, 6);
        assert_eq!(g.n_vertices(), 5);
        for u in 0..5 {
            for v in (u + 1)..5 {
                assert!(g.has_edge(u, v), "missing ({u},{v})");
            }
        }
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn dilation_matches_path_length() {
        let g = bottleneck_instance(3, 10);
        assert_eq!(g.dilation(), 9);
    }

    #[test]
    fn links_attach_at_ends_only() {
        let g = bottleneck_instance(4, 8);
        for &(mu, mv, cu, cv) in g.links() {
            assert!(cu < cv);
            assert_eq!(mu % 8, 7, "lower cluster uses right end");
            assert_eq!(mv % 8, 0, "higher cluster uses left end");
        }
    }

    #[test]
    fn single_links_between_clusters() {
        let g = bottleneck_instance(6, 4);
        for u in 0..6 {
            for v in (u + 1)..6 {
                assert_eq!(g.link_multiplicity(u, v), 1);
            }
        }
    }
}
