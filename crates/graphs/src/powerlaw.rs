//! Chung–Lu power-law conflict graphs.
//!
//! The degree distributions of real conflict graphs (interference maps,
//! social overlays) are heavy-tailed, which stresses exactly the machinery
//! G(n, p) leaves idle: a few huge almost-clique-free hubs next to a long
//! thin tail, badly unbalanced CSR rows, skewed palettes. The Chung–Lu
//! model plants a target power-law degree sequence `w_v ∝ (v + v0)^(-1/
//! (β - 1))` and connects `{u, v}` independently with probability
//! `min(1, w_u w_v / Σw)`, so the expected degree of `v` is (up to
//! truncation) `w_v`.
//!
//! Sampling is the Miller–Hagberg skip walk: weights are descending in the
//! vertex index by construction, so for a fixed row `u` the acceptance
//! probability only shrinks as `v` grows and geometric skips under the
//! current bound (re-accepted at the true probability on landing) emit the
//! row in `O(deg)` expected time instead of `O(n)`. Each row draws from
//! its own [`SeedStream`]-derived RNG, so edge generation shards across
//! threads through the [`crate::pipeline::ShardedEdgeSource`] scaffolding
//! (shards balanced by weight mass) with output independent of the
//! thread count.

use crate::layouts::HSpec;
use crate::pipeline::ShardedEdgeSource;
use cgc_net::{ParallelConfig, SeedStream};
use rand::RngExt;

/// Parameters of a Chung–Lu power-law spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawConfig {
    /// Number of vertices.
    pub n: usize,
    /// Degree exponent `β` (heavier tail as `β → 2`). Must be `> 2` so
    /// the expected degree stays finite.
    pub exponent: f64,
    /// Target average degree (the weight sum is scaled to `n · avg`).
    pub avg_degree: f64,
}

impl Default for PowerLawConfig {
    fn default() -> Self {
        PowerLawConfig {
            n: 1000,
            exponent: 2.5,
            avg_degree: 8.0,
        }
    }
}

/// The planted Chung–Lu weights: descending, scaled so their sum is
/// `n * avg_degree`, with every weight capped at `sqrt(Σw)` so that
/// `w_u w_v / Σw ≤ 1` and no probability truncates (keeps expected
/// degrees honest at the head).
pub fn power_law_weights(cfg: &PowerLawConfig) -> Vec<f64> {
    assert!(cfg.n > 0, "empty spec");
    assert!(cfg.exponent > 2.0, "need β > 2 for a finite mean");
    assert!(cfg.avg_degree > 0.0, "need a positive average degree");
    let gamma = -1.0 / (cfg.exponent - 1.0);
    let mut w: Vec<f64> = (0..cfg.n).map(|v| ((v + 1) as f64).powf(gamma)).collect();
    let sum: f64 = w.iter().sum();
    let scale = cfg.avg_degree * cfg.n as f64 / sum;
    for x in &mut w {
        *x *= scale;
    }
    // Cap the head at sqrt(S) (S is invariant enough: the cap only shaves
    // the first few hubs), preserving the descending order.
    let s: f64 = w.iter().sum();
    let cap = s.sqrt();
    for x in &mut w {
        if *x > cap {
            *x = cap;
        }
    }
    w
}

/// Samples a Chung–Lu power-law spec; deterministic in `(cfg, seed)` and
/// independent of the thread count in `par`.
pub fn power_law_spec(cfg: &PowerLawConfig, seed: u64, par: &ParallelConfig) -> HSpec {
    power_law_runs(cfg, seed, par).into_hspec(par)
}

/// The raw per-shard edge runs of a Chung–Lu sample — the generation half
/// of [`power_law_spec`], before canonicalization.
pub(crate) fn power_law_runs(
    cfg: &PowerLawConfig,
    seed: u64,
    par: &ParallelConfig,
) -> ShardedEdgeSource {
    let w = power_law_weights(cfg);
    let s: f64 = w.iter().sum();
    let seeds = SeedStream::new(seed);
    let hub_seeds = seeds.child(0x5E47);
    let w = &w;
    // Row u's expected work tracks its weight, so shard by weight mass; a
    // hub row whose weight exceeds the quantum (Σw / 1024, a pure function
    // of the weights — never of the thread count) additionally splits into
    // k_u column-range tasks so no single row can serialize a shard. Split
    // rows draw per-task substreams keyed by (u, j) from a child-namespaced
    // stream; unsplit rows keep the historical per-row stream, so samples
    // are byte-compatible with the row-granular generator wherever no row
    // crosses the quantum.
    let quantum = s / 1024.0;
    ShardedEdgeSource::from_row_tasks_weighted(cfg.n, par, w, quantum, move |u, j, k, out| {
        // Task j of k owns the j-th equal-count slice of columns u+1..n.
        // The Miller–Hagberg invariant is per-slice: weights descend, so
        // the bound `p` seeded at the slice head still dominates the rest.
        let span = cfg.n - (u + 1);
        let lo = u + 1 + span * j as usize / k as usize;
        let hi = u + 1 + span * (j as usize + 1) / k as usize;
        if lo >= hi {
            return;
        }
        let rng = if k == 1 {
            seeds.rng_for(0x505F_4C41, u as u64)
        } else {
            hub_seeds.rng_for(u as u64, u64::from(j))
        };
        skip_walk(w, s, u, lo, hi, rng, out);
    })
}

/// One Miller–Hagberg skip walk over columns `lo..hi` of row `u`.
///
/// Invariant: `p` bounds the true probability for every v' ≥ v (weights
/// are descending), so skipping geometrically under `p` and thinning by
/// `q / p` on landing samples each pair with exactly `q`.
fn skip_walk(
    w: &[f64],
    s: f64,
    u: usize,
    lo: usize,
    hi: usize,
    mut rng: impl RngExt,
    out: &mut Vec<(usize, usize)>,
) {
    let mut v = lo;
    let mut p = (w[u] * w[v] / s).min(1.0);
    while v < hi && p > 0.0 {
        if p < 1.0 {
            let r: f64 = rng.random();
            let skip = ((1.0 - r).ln() / (1.0 - p).ln()).floor();
            if skip >= (hi - v) as f64 {
                break;
            }
            v += skip as usize;
        }
        let q = (w[u] * w[v] / s).min(1.0);
        if rng.random::<f64>() < q / p {
            out.push((u, v));
        }
        p = q;
        v += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degrees(h: &HSpec) -> Vec<usize> {
        let mut deg = vec![0usize; h.n];
        for &(u, v) in &h.edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        deg
    }

    #[test]
    fn edge_count_tracks_target_average_degree() {
        let cfg = PowerLawConfig {
            n: 4000,
            exponent: 2.5,
            avg_degree: 8.0,
        };
        let h = power_law_spec(&cfg, 7, &ParallelConfig::serial());
        let expect = cfg.avg_degree * cfg.n as f64 / 2.0;
        let m = h.edges.len() as f64;
        assert!(
            (m - expect).abs() < 0.35 * expect,
            "m = {m}, expect ≈ {expect}"
        );
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let cfg = PowerLawConfig {
            n: 4000,
            exponent: 2.2,
            avg_degree: 6.0,
        };
        let h = power_law_spec(&cfg, 3, &ParallelConfig::serial());
        let deg = degrees(&h);
        let max = *deg.iter().max().unwrap();
        let avg = deg.iter().sum::<usize>() as f64 / cfg.n as f64;
        assert!(
            max as f64 > 6.0 * avg,
            "power law should have hubs: max {max}, avg {avg:.1}"
        );
        // And the planted ordering shows: early vertices are the hubs.
        let head: usize = deg[..40].iter().sum();
        let tail: usize = deg[cfg.n - 40..].iter().sum();
        assert!(head > 4 * tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn thread_count_does_not_change_the_graph() {
        let cfg = PowerLawConfig {
            n: 800,
            exponent: 2.5,
            avg_degree: 7.0,
        };
        let reference = power_law_spec(&cfg, 11, &ParallelConfig::serial());
        for threads in [2, 4, 8] {
            let got = power_law_spec(&cfg, 11, &ParallelConfig::with_threads(threads));
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = PowerLawConfig::default();
        let par = ParallelConfig::serial();
        assert_eq!(power_law_spec(&cfg, 5, &par), power_law_spec(&cfg, 5, &par));
        assert_ne!(power_law_spec(&cfg, 5, &par), power_law_spec(&cfg, 6, &par));
    }

    #[test]
    fn weights_are_descending_and_scaled() {
        let cfg = PowerLawConfig {
            n: 500,
            exponent: 2.5,
            avg_degree: 10.0,
        };
        let w = power_law_weights(&cfg);
        for i in 1..w.len() {
            assert!(w[i] <= w[i - 1]);
        }
        let sum: f64 = w.iter().sum();
        // The cap shaves a bit off the head; stay within 20%.
        assert!((sum - 5000.0).abs() < 1000.0, "sum {sum}");
    }

    #[test]
    #[should_panic(expected = "β > 2")]
    fn shallow_exponent_rejected() {
        let cfg = PowerLawConfig {
            n: 10,
            exponent: 1.8,
            avg_degree: 2.0,
        };
        power_law_weights(&cfg);
    }
}
