//! Workload generators for the cluster-coloring experiments.
//!
//! Generators produce a conflict-graph specification ([`HSpec`]) plus
//! planted-structure metadata; [`layouts::realize`] then lays the spec out
//! over a communication network with a chosen cluster topology (singleton
//! = CONGEST, path, star, balanced tree — the paper's Figure 2/3 shapes)
//! and link multiplicity, yielding a ready [`cgc_cluster::ClusterGraph`].
//!
//! * [`gnp`] — Erdős–Rényi `G(n, p)`, sampled by a row-sharded skip walk
//!   (`O(m)` expected, not `O(n²)`);
//! * [`planted`] — disjoint or noisy planted almost-cliques, cabal-heavy
//!   instances with controlled anti-degree and external degree, and mixed
//!   Reed-style instances (sparse background + dense blocks);
//! * [`layouts`] — cluster realizations over `G`;
//! * [`power`] — square graphs for the distance-2 corollary (E12);
//! * [`powerlaw`] — Chung–Lu power-law (skewed-degree) graphs, sampled by
//!   per-row skip walks so generation shards across threads;
//! * [`rgg`] — random geometric (spatially clustered) graphs with a
//!   grid-bucketed, row-sharded edge scan;
//! * [`adversarial`] — the Figure 2/3 bottleneck-link instances;
//! * [`contraction`] — grid networks contracted along seeded blobs (the
//!   flow-algorithm scenario of §1.1);
//! * [`pipeline`] — the shared sharded edge pipeline
//!   ([`ShardedEdgeSource`]) every family's generate → canonicalize →
//!   build flow runs through;
//! * [`workload`] — [`WorkloadSpec`]: every family behind one typed,
//!   string-addressable instance spec (`"gnp:n=300,p=0.02,seed=14"`).
//!
//! The parallel generators take a [`cgc_net::ParallelConfig`] (re-exported
//! as `cgc_cluster::ParallelConfig`); their output is a pure function of
//! the parameters and seed, never of the thread count.

pub mod adversarial;
pub mod churn;
pub mod contraction;
pub mod gnp;
pub mod layouts;
pub mod pipeline;
pub mod planted;
pub mod power;
pub mod powerlaw;
pub mod rgg;
pub mod workload;

pub use adversarial::{bottleneck_instance, bottleneck_instance_with};
pub use churn::ChurnSpec;
pub use contraction::{contraction_instance, contraction_instance_with};
pub use gnp::{gnp_spec, gnp_spec_with};
pub use layouts::{realize, realize_network, realize_runs, realize_with, HSpec, Layout};
pub use pipeline::ShardedEdgeSource;
pub use planted::{cabal_spec, mixture_spec, planted_cliques_spec, MixtureConfig, PlantedInfo};
pub use power::{square_spec, square_spec_with};
pub use powerlaw::{power_law_spec, power_law_weights, PowerLawConfig};
pub use rgg::{geometric_spec, radius_for_avg_degree};
pub use workload::{SetupTimings, WorkloadFamily, WorkloadParseError, WorkloadSpec};
