//! Workload generators for the cluster-coloring experiments.
//!
//! Generators produce a conflict-graph specification ([`HSpec`]) plus
//! planted-structure metadata; [`layouts::realize`] then lays the spec out
//! over a communication network with a chosen cluster topology (singleton
//! = CONGEST, path, star, balanced tree — the paper's Figure 2/3 shapes)
//! and link multiplicity, yielding a ready [`cgc_cluster::ClusterGraph`].
//!
//! * [`gnp`] — Erdős–Rényi `G(n, p)`;
//! * [`planted`] — disjoint or noisy planted almost-cliques, cabal-heavy
//!   instances with controlled anti-degree and external degree, and mixed
//!   Reed-style instances (sparse background + dense blocks);
//! * [`layouts`] — cluster realizations over `G`;
//! * [`power`] — square graphs for the distance-2 corollary (E12);
//! * [`powerlaw`] — Chung–Lu power-law (skewed-degree) graphs, sampled by
//!   per-row skip walks so generation shards across threads;
//! * [`rgg`] — random geometric (spatially clustered) graphs with a
//!   grid-bucketed, row-sharded edge scan;
//! * [`adversarial`] — the Figure 2/3 bottleneck-link instances;
//! * [`workload`] — [`WorkloadSpec`]: every family behind one typed,
//!   string-addressable instance spec (`"gnp:n=300,p=0.02,seed=14"`).
//!
//! The parallel generators take a [`cgc_cluster::ParallelConfig`]; their
//! output is a pure function of the parameters and seed, never of the
//! thread count.

pub mod adversarial;
pub mod gnp;
pub mod layouts;
mod parallel;
pub mod planted;
pub mod power;
pub mod powerlaw;
pub mod rgg;
pub mod workload;

pub use adversarial::{bottleneck_instance, bottleneck_instance_with};
pub use gnp::gnp_spec;
pub use layouts::{realize, realize_network, realize_with, HSpec, Layout};
pub use planted::{cabal_spec, mixture_spec, planted_cliques_spec, MixtureConfig, PlantedInfo};
pub use power::square_spec;
pub use powerlaw::{power_law_spec, power_law_weights, PowerLawConfig};
pub use rgg::{geometric_spec, radius_for_avg_degree};
pub use workload::{WorkloadFamily, WorkloadParseError, WorkloadSpec};
