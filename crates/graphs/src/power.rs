//! Square graphs for the distance-2 corollary (Corollary 1.3, E12).
//!
//! Distance-2 coloring of `G` is vertex coloring of `G²`. The paper treats
//! `G²` as a *virtual graph* over `G` (clusters = closed neighborhoods,
//! overlapping); our cluster graphs require disjoint clusters, so — per
//! the DESIGN.md substitution table — experiment E12 colors the explicit
//! square graph with the cluster machinery and verifies the `Δ² + 1` color
//! bound, which preserves the conflict structure (the overlap-congestion
//! overhead of the virtual-graph embedding is a constant the sibling paper
//! \[FHN24\] handles and is documented rather than simulated).

use crate::layouts::HSpec;

/// The square of a conflict graph: `{u, v}` is an edge of `G²` when their
/// distance in `G` is 1 or 2.
pub fn square_spec(g: &HSpec) -> HSpec {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); g.n];
    for &(u, v) in &g.edges {
        adj[u].push(v);
        adj[v].push(u);
    }
    let mut edges = Vec::new();
    for u in 0..g.n {
        let mut reach: Vec<usize> = adj[u].clone();
        for &w in &adj[u] {
            reach.extend_from_slice(&adj[w]);
        }
        reach.sort_unstable();
        reach.dedup();
        for &v in &reach {
            if v > u {
                edges.push((u, v));
            }
        }
    }
    HSpec::new(g.n, edges)
}

/// `Δ₂ = max_v |N²(v)|`, the parameter of Corollary 1.3.
pub fn delta_two(g: &HSpec) -> usize {
    square_spec(g).max_degree()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_of_path_connects_distance_two() {
        let p = HSpec::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let sq = square_spec(&p);
        assert!(sq.edges.contains(&(0, 2)));
        assert!(sq.edges.contains(&(0, 1)));
        assert!(!sq.edges.contains(&(0, 3)));
        assert_eq!(sq.max_degree(), 4); // middle vertex reaches 4 others
    }

    #[test]
    fn square_of_star_is_complete() {
        let s = HSpec::new(6, (1..6).map(|i| (0, i)).collect());
        let sq = square_spec(&s);
        assert_eq!(sq.edges.len(), 15, "K6 has 15 edges");
        assert_eq!(delta_two(&s), 5);
    }

    #[test]
    fn square_of_empty_graph_is_empty() {
        let e = HSpec::new(4, vec![]);
        assert!(square_spec(&e).edges.is_empty());
        assert_eq!(delta_two(&e), 0);
    }
}
