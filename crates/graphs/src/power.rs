//! Square graphs for the distance-2 corollary (Corollary 1.3, E12).
//!
//! Distance-2 coloring of `G` is vertex coloring of `G²`. The paper treats
//! `G²` as a *virtual graph* over `G` (clusters = closed neighborhoods,
//! overlapping); our cluster graphs require disjoint clusters, so — per
//! the DESIGN.md substitution table — experiment E12 colors the explicit
//! square graph with the cluster machinery and verifies the `Δ² + 1` color
//! bound, which preserves the conflict structure (the overlap-congestion
//! overhead of the virtual-graph embedding is a constant the sibling paper
//! \[FHN24\] handles and is documented rather than simulated).

use crate::layouts::HSpec;
use crate::pipeline::ShardedEdgeSource;
use cgc_net::ParallelConfig;

/// The square of a conflict graph: `{u, v}` is an edge of `G²` when their
/// distance in `G` is 1 or 2.
pub fn square_spec(g: &HSpec) -> HSpec {
    square_spec_with(g, &ParallelConfig::serial())
}

/// [`square_spec`] with the per-row 2-neighborhood expansion sharded over
/// `par`'s threads; the result is a pure function of `g`, independent of
/// the thread count.
pub fn square_spec_with(g: &HSpec, par: &ParallelConfig) -> HSpec {
    square_runs(g, par).into_hspec(par)
}

/// The raw per-shard edge runs of the square expansion — the generation
/// half of [`square_spec_with`], before canonicalization.
pub(crate) fn square_runs(g: &HSpec, par: &ParallelConfig) -> ShardedEdgeSource {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); g.n];
    for &(u, v) in &g.edges {
        adj[u].push(v);
        adj[v].push(u);
    }
    let adj = &adj;
    // Row u touches its whole 2-neighborhood; its degree is the cheap
    // proxy that keeps hub rows from serializing one shard.
    let weights: Vec<f64> = adj.iter().map(|a| a.len() as f64 + 1.0).collect();
    ShardedEdgeSource::from_rows_weighted(g.n, par, Some(&weights), move |u, out| {
        let mut reach: Vec<usize> = adj[u].clone();
        for &w in &adj[u] {
            reach.extend_from_slice(&adj[w]);
        }
        reach.sort_unstable();
        reach.dedup();
        for &v in &reach {
            if v > u {
                out.push((u, v));
            }
        }
    })
}

/// `Δ₂ = max_v |N²(v)|`, the parameter of Corollary 1.3.
pub fn delta_two(g: &HSpec) -> usize {
    square_spec(g).max_degree()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_of_path_connects_distance_two() {
        let p = HSpec::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let sq = square_spec(&p);
        assert!(sq.edges.contains(&(0, 2)));
        assert!(sq.edges.contains(&(0, 1)));
        assert!(!sq.edges.contains(&(0, 3)));
        assert_eq!(sq.max_degree(), 4); // middle vertex reaches 4 others
    }

    #[test]
    fn square_of_star_is_complete() {
        let s = HSpec::new(6, (1..6).map(|i| (0, i)).collect());
        let sq = square_spec(&s);
        assert_eq!(sq.edges.len(), 15, "K6 has 15 edges");
        assert_eq!(delta_two(&s), 5);
    }

    #[test]
    fn square_of_empty_graph_is_empty() {
        let e = HSpec::new(4, vec![]);
        assert!(square_spec(&e).edges.is_empty());
        assert_eq!(delta_two(&e), 0);
    }
}
