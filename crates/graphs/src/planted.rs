//! Planted dense structure: almost-cliques, cabals, Reed-style mixtures.
//!
//! These instances drive the coloring pipeline through its distinct code
//! paths: perfect cliques (trivial ACD, tight palettes), mixtures with
//! anti-edges and external edges (colorful matching, slack generation,
//! synchronized color trial), and cabal-heavy instances with tiny external
//! degree (put-aside sets, fingerprint matching — the §6/§7 machinery).

use crate::layouts::HSpec;
use crate::pipeline::ShardedEdgeSource;
use cgc_net::{ParallelConfig, SeedStream};
use rand::RngExt;

/// Ground-truth structure of a planted instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedInfo {
    /// Planted dense blocks (sorted member lists).
    pub cliques: Vec<Vec<usize>>,
    /// Background (sparse) vertices.
    pub sparse: Vec<usize>,
}

/// `c` disjoint perfect `k`-cliques, no background. The seed draws a
/// uniform permutation of the vertex labels, so clique membership is not
/// revealed by vertex-id contiguity (decomposition code that peeked at id
/// blocks would pass contiguous instances vacuously).
pub fn planted_cliques_spec(c: usize, k: usize, seed: u64) -> (HSpec, PlantedInfo) {
    let (src, info) = planted_cliques_runs(c, k, seed);
    (src.into_hspec(&ParallelConfig::serial()), info)
}

/// The raw edge run of [`planted_cliques_spec`], before canonicalization
/// — the generation half the workload pipeline times separately.
pub(crate) fn planted_cliques_runs(
    c: usize,
    k: usize,
    seed: u64,
) -> (ShardedEdgeSource, PlantedInfo) {
    let n = c * k;
    // Fisher–Yates under the seeded stream: label[i] is the public id of
    // the i-th slot in the block layout.
    let mut rng = SeedStream::new(seed).rng_for(0x00C1_10E5, 0);
    let mut label: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        label.swap(i, rng.random_range(0..=i));
    }
    let mut edges = Vec::new();
    let mut cliques = Vec::with_capacity(c);
    for i in 0..c {
        let base = i * k;
        for u in 0..k {
            for v in (u + 1)..k {
                edges.push((label[base + u], label[base + v]));
            }
        }
        let mut members: Vec<usize> = (base..base + k).map(|j| label[j]).collect();
        members.sort_unstable();
        cliques.push(members);
    }
    (
        ShardedEdgeSource::from_edges(n, edges),
        PlantedInfo {
            cliques,
            sparse: Vec::new(),
        },
    )
}

/// Configuration for a Reed-style mixture instance.
///
/// External degrees are *capped* per vertex: a dense vertex's degree is
/// `|K| − 1 − a_v + e_v` with `e_v ≤ external_per_vertex`, so planted
/// blocks stay genuine almost-cliques relative to the global `Δ` — the
/// regime the paper's decomposition targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixtureConfig {
    /// Number of planted dense blocks.
    pub n_cliques: usize,
    /// Members per block.
    pub clique_size: usize,
    /// Probability of dropping each intra-block edge (creates anti-edges).
    pub anti_edge_prob: f64,
    /// External edges per dense vertex (exact cap; near-regular).
    pub external_per_vertex: usize,
    /// Background vertex count.
    pub sparse_n: usize,
    /// Edge probability inside the background.
    pub sparse_p: f64,
}

impl Default for MixtureConfig {
    fn default() -> Self {
        MixtureConfig {
            n_cliques: 3,
            clique_size: 24,
            anti_edge_prob: 0.05,
            external_per_vertex: 1,
            sparse_n: 48,
            sparse_p: 0.15,
        }
    }
}

/// Samples a mixture instance.
///
/// # Panics
///
/// Panics if probabilities are outside `[0, 1]`.
pub fn mixture_spec(cfg: &MixtureConfig, seed: u64) -> (HSpec, PlantedInfo) {
    let (src, info) = mixture_runs(cfg, seed);
    (src.into_hspec(&ParallelConfig::serial()), info)
}

/// The raw edge run of [`mixture_spec`], before canonicalization.
pub(crate) fn mixture_runs(cfg: &MixtureConfig, seed: u64) -> (ShardedEdgeSource, PlantedInfo) {
    assert!(
        (0.0..=1.0).contains(&cfg.anti_edge_prob),
        "anti_edge_prob in [0,1]"
    );
    assert!((0.0..=1.0).contains(&cfg.sparse_p), "sparse_p in [0,1]");
    let mut rng = SeedStream::new(seed).rng_for(0x4D49_5854, 0);
    let dense_n = cfg.n_cliques * cfg.clique_size;
    let n = dense_n + cfg.sparse_n;
    let mut edges = Vec::new();
    let mut cliques = Vec::with_capacity(cfg.n_cliques);

    for i in 0..cfg.n_cliques {
        let base = i * cfg.clique_size;
        for u in 0..cfg.clique_size {
            for v in (u + 1)..cfg.clique_size {
                if rng.random::<f64>() >= cfg.anti_edge_prob {
                    edges.push((base + u, base + v));
                }
            }
        }
        cliques.push((base..base + cfg.clique_size).collect());
    }

    // Near-regular external edges: every endpoint's external count stays
    // within the cap, keeping Δ ≈ clique_size − 1 + cap.
    let cap = cfg.external_per_vertex;
    let mut ext = vec![0usize; n];
    if cap > 0 && (cfg.n_cliques > 1 || cfg.sparse_n > 0) {
        for v in 0..dense_n {
            let block = v / cfg.clique_size;
            let mut guard = 0usize;
            while ext[v] < cap && guard < 64 * cap {
                guard += 1;
                let u = rng.random_range(0..n);
                let u_block = if u < dense_n {
                    u / cfg.clique_size
                } else {
                    usize::MAX
                };
                if u != v && u_block != block && ext[u] < cap {
                    edges.push((v.min(u), v.max(u)));
                    ext[v] += 1;
                    ext[u] += 1;
                }
            }
        }
    }

    // Background G(sparse_n, sparse_p).
    for u in dense_n..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < cfg.sparse_p {
                edges.push((u, v));
            }
        }
    }

    (
        ShardedEdgeSource::from_edges(n, edges),
        PlantedInfo {
            cliques,
            sparse: (dense_n..n).collect(),
        },
    )
}

/// Cabal-heavy instance: `c` blocks of size `k`; inside each block,
/// `anti_pairs` disjoint vertex pairs lose their edge (planting exactly
/// that many anti-edges, a matching); `ext_edges` random inter-block edges
/// total (kept small so every block is a cabal: `e_K ≪ ℓ`).
///
/// # Panics
///
/// Panics if `2 * anti_pairs > k`.
pub fn cabal_spec(
    c: usize,
    k: usize,
    anti_pairs: usize,
    ext_edges: usize,
    seed: u64,
) -> (HSpec, PlantedInfo) {
    let (src, info) = cabal_runs(c, k, anti_pairs, ext_edges, seed);
    (src.into_hspec(&ParallelConfig::serial()), info)
}

/// The raw edge run of [`cabal_spec`], before canonicalization.
pub(crate) fn cabal_runs(
    c: usize,
    k: usize,
    anti_pairs: usize,
    ext_edges: usize,
    seed: u64,
) -> (ShardedEdgeSource, PlantedInfo) {
    assert!(2 * anti_pairs <= k, "too many anti pairs for block size");
    let mut rng = SeedStream::new(seed).rng_for(0x000C_ABA1, 0);
    let n = c * k;
    let mut edges = Vec::new();
    let mut cliques = Vec::with_capacity(c);
    for i in 0..c {
        let base = i * k;
        for u in 0..k {
            for v in (u + 1)..k {
                // The anti-matching pairs are (0,1), (2,3), …
                let is_anti = v == u + 1 && u % 2 == 0 && u / 2 < anti_pairs;
                if !is_anti {
                    edges.push((base + u, base + v));
                }
            }
        }
        cliques.push((base..base + k).collect());
    }
    let mut placed = 0usize;
    let mut guard = 0usize;
    while placed < ext_edges && c > 1 && guard < 64 * ext_edges.max(1) {
        guard += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u / k != v / k {
            edges.push((u.min(v), u.max(v)));
            placed += 1;
        }
    }
    (
        ShardedEdgeSource::from_edges(n, edges),
        PlantedInfo {
            cliques,
            sparse: Vec::new(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_cliques_have_expected_edges() {
        let (h, info) = planted_cliques_spec(3, 10, 0);
        assert_eq!(h.n, 30);
        assert_eq!(h.edges.len(), 3 * 45);
        assert_eq!(info.cliques.len(), 3);
        assert_eq!(h.max_degree(), 9);
        // Every planted block really is a clique on its (permuted) members.
        for members in &info.cliques {
            for (i, &u) in members.iter().enumerate() {
                for &v in &members[i + 1..] {
                    assert!(
                        h.edges.binary_search(&(u.min(v), u.max(v))).is_ok(),
                        "missing clique edge ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn planted_cliques_honor_their_seed() {
        // Same seed → identical instance; different seed → a different
        // labeling (the historical bug: the seed was silently ignored).
        let a = planted_cliques_spec(3, 8, 1);
        let b = planted_cliques_spec(3, 8, 1);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        let c = planted_cliques_spec(3, 8, 2);
        assert_ne!(a.0, c.0, "seed must reach the construction");
        // The permutation scrambles membership: some clique is not a
        // contiguous id block.
        assert!(
            c.1.cliques
                .iter()
                .any(|m| m.last().unwrap() - m.first().unwrap() + 1 != m.len()),
            "cliques should not all be contiguous id blocks: {:?}",
            c.1.cliques
        );
    }

    #[test]
    fn mixture_has_dense_and_sparse_parts() {
        let cfg = MixtureConfig::default();
        let (h, info) = mixture_spec(&cfg, 5);
        assert_eq!(h.n, 3 * 24 + 48);
        assert_eq!(info.cliques.len(), 3);
        assert_eq!(info.sparse.len(), 48);
        // Dense vertices are much higher degree than background.
        let mut deg = vec![0usize; h.n];
        for &(u, v) in &h.edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        let dense_avg: f64 = (0..72).map(|v| deg[v] as f64).sum::<f64>() / 72.0;
        let sparse_avg: f64 = (72..h.n).map(|v| deg[v] as f64).sum::<f64>() / 48.0;
        assert!(
            dense_avg > 2.0 * sparse_avg,
            "dense {dense_avg} sparse {sparse_avg}"
        );
    }

    #[test]
    fn cabal_spec_plants_exact_anti_matching() {
        let (h, info) = cabal_spec(2, 12, 3, 4, 9);
        assert_eq!(info.cliques.len(), 2);
        // Block 0: edges (0,1), (2,3), (4,5) are missing.
        let has = |u: usize, v: usize| h.edges.binary_search(&(u.min(v), u.max(v))).is_ok();
        assert!(!has(0, 1));
        assert!(!has(2, 3));
        assert!(!has(4, 5));
        assert!(has(6, 7));
        assert!(has(0, 2));
        // Anti-edges in block 1 too (shifted by 12).
        assert!(!has(12, 13));
    }

    #[test]
    fn cabal_spec_external_edges_cross_blocks() {
        let (h, _) = cabal_spec(3, 10, 0, 12, 11);
        let cross = h.edges.iter().filter(|&&(u, v)| u / 10 != v / 10).count();
        assert!(cross >= 10, "cross edges {cross}");
    }

    #[test]
    fn deterministic_generators() {
        let a = mixture_spec(&MixtureConfig::default(), 3);
        let b = mixture_spec(&MixtureConfig::default(), 3);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    #[should_panic(expected = "too many anti pairs")]
    fn oversized_anti_matching_panics() {
        cabal_spec(1, 4, 3, 0, 1);
    }
}
