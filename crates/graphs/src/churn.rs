//! Seeded churn schedules: streams of edge delta batches over any
//! workload family.
//!
//! A [`ChurnSpec`] pairs a base [`WorkloadSpec`] with a deterministic
//! insert/delete schedule and is spec-addressable like everything else:
//! `churn:batches=8,size=64,ins=0.5,seed=5@gnp:n=400,p=0.02,seed=1`
//! round-trips through `Display`/`FromStr` exactly, so any churn
//! experiment row can be replayed from one string.
//!
//! Schedules are *safe by construction*: deletions draw only from
//! **inter-cluster** edges of the evolving graph (removing one can never
//! disconnect a cluster's induced subgraph, so every batch is guaranteed
//! to apply), while insertions draw uniformly from absent machine pairs —
//! intra-cluster inserts dirty their cluster's support tree, and inserted
//! inter-cluster edges join the future deletion pool. All randomness
//! flows from [`SeedStream`], one substream per batch.

use crate::workload::{Fields, WorkloadParseError, WorkloadSpec};
use cgc_cluster::ClusterGraph;
use cgc_net::{DeltaBatch, MachineId, SeedStream};
use rand::RngExt;
use std::collections::HashSet;
use std::fmt;
use std::str::FromStr;

/// Stage tag separating churn-schedule streams from every other consumer
/// of the master seed.
const CHURN_SALT: u64 = 0x6368_7572_6E00; // "churn"

/// A deterministic insert/delete schedule over a base workload.
///
/// # Example
///
/// ```
/// use cgc_graphs::ChurnSpec;
/// let spec: ChurnSpec = "churn:batches=4,size=16,ins=0.5,seed=7@gnp:n=120,p=0.05,seed=1"
///     .parse()
///     .unwrap();
/// assert_eq!(spec.batches, 4);
/// assert_eq!(
///     spec.to_string(),
///     "churn:batches=4,size=16,ins=0.5,seed=7@gnp:n=120,p=0.05,seed=1"
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSpec {
    /// The workload the schedule mutates.
    pub base: WorkloadSpec,
    /// Number of delta batches in the schedule.
    pub batches: usize,
    /// Edges named per batch (inserts + deletes; a batch may fall short
    /// when the candidate pools run dry).
    pub batch_size: usize,
    /// Fraction of each batch that is insertions, in `[0, 1]`.
    pub insert_frac: f64,
    /// Master seed of the schedule (independent of the base's seed).
    pub seed: u64,
}

impl ChurnSpec {
    /// A schedule with an even insert/delete split.
    pub fn balanced(base: WorkloadSpec, batches: usize, batch_size: usize, seed: u64) -> Self {
        ChurnSpec {
            base,
            batches,
            batch_size,
            insert_frac: 0.5,
            seed,
        }
    }

    /// Generates the delta batches against a **built instance of the base
    /// workload**. The schedule tracks the evolving edge set, so batch
    /// `i + 1`'s candidates reflect batches `0..=i`; applying the batches
    /// in order to `g` (or any equal graph) always succeeds and never
    /// disconnects a cluster. Deterministic in `(spec, g)`.
    pub fn schedule(&self, g: &ClusterGraph) -> Vec<DeltaBatch> {
        let comm = g.comm();
        let n = comm.n_machines();
        let seeds = SeedStream::new(self.seed).child(CHURN_SALT);
        let mut present: HashSet<(MachineId, MachineId)> = comm.edges().iter().copied().collect();
        // Deletion pool: present inter-cluster edges, in a deterministic
        // order mutated only by index sampling and swap_remove.
        let mut inter: Vec<(MachineId, MachineId)> = comm
            .edges()
            .iter()
            .copied()
            .filter(|&(a, b)| g.cluster_of(a) != g.cluster_of(b))
            .collect();
        let n_ins = ((self.batch_size as f64) * self.insert_frac).round() as usize;
        let n_ins = n_ins.min(self.batch_size);
        let n_del = self.batch_size - n_ins;
        let mut out = Vec::with_capacity(self.batches);
        for b in 0..self.batches {
            let mut rng = seeds.rng_for(b as u64, 0);
            let mut inserts = Vec::with_capacity(n_ins);
            if n >= 2 {
                // Rejection-sample absent pairs; the cap bounds the walk
                // on dense graphs without breaking determinism.
                let mut tries = 0usize;
                while inserts.len() < n_ins && tries < 32 * self.batch_size + 64 {
                    tries += 1;
                    let a = rng.random_range(0..n);
                    let b2 = rng.random_range(0..n);
                    if a == b2 {
                        continue;
                    }
                    let e = (a.min(b2), a.max(b2));
                    if present.contains(&e) {
                        continue;
                    }
                    present.insert(e);
                    inserts.push(e);
                }
            }
            let mut deletes = Vec::with_capacity(n_del);
            while deletes.len() < n_del && !inter.is_empty() {
                let i = rng.random_range(0..inter.len());
                let e = inter.swap_remove(i);
                present.remove(&e);
                deletes.push(e);
            }
            // Inserted inter-cluster edges become deletion candidates for
            // later batches.
            for &(a, b2) in &inserts {
                if g.cluster_of(a) != g.cluster_of(b2) {
                    inter.push((a, b2));
                }
            }
            out.push(
                DeltaBatch::new(n, &inserts, &deletes)
                    .expect("schedule candidates are valid and disjoint by construction"),
            );
        }
        out
    }
}

impl fmt::Display for ChurnSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "churn:batches={},size={},ins={},seed={}@{}",
            self.batches,
            self.batch_size,
            crate::workload::fmt_f64(self.insert_frac),
            self.seed,
            self.base
        )
    }
}

impl FromStr for ChurnSpec {
    type Err = WorkloadParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s.strip_prefix("churn:").ok_or_else(|| {
            WorkloadParseError(format!("expected `churn:key=value,...@base-spec`: `{s}`"))
        })?;
        let (own, base) = body.split_once('@').ok_or_else(|| {
            WorkloadParseError(format!("missing `@base-spec` in churn spec: `{s}`"))
        })?;
        let mut fields = Fields::parse(own)?;
        let batches = fields.take("batches")?;
        let batch_size = fields.take("size")?;
        let insert_frac: f64 = fields.take("ins")?;
        let seed = fields.take("seed")?;
        fields.finish()?;
        if !(0.0..=1.0).contains(&insert_frac) {
            return Err(WorkloadParseError(format!(
                "ins must be in [0, 1], got {insert_frac}"
            )));
        }
        let base: WorkloadSpec = base.parse()?;
        Ok(ChurnSpec {
            base,
            batches,
            batch_size,
            insert_frac,
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_cluster::ParallelConfig;

    fn build(spec: &WorkloadSpec) -> ClusterGraph {
        spec.build_timed(&ParallelConfig::serial()).0
    }

    #[test]
    fn spec_string_round_trips() {
        let s = "churn:batches=6,size=32,ins=0.25,seed=9@powerlaw:n=200,beta=2.5,avg=6,seed=3";
        let spec: ChurnSpec = s.parse().unwrap();
        assert_eq!(spec.to_string(), s);
        assert_eq!(spec.batches, 6);
        assert_eq!(spec.insert_frac, 0.25);
        assert_eq!(
            spec.base.to_string(),
            "powerlaw:n=200,beta=2.5,avg=6,seed=3"
        );
    }

    #[test]
    fn bad_specs_rejected() {
        for bad in [
            "churn:batches=2,size=8,ins=0.5,seed=1", // no base
            "gnp:n=10,p=0.1,seed=1",                 // not churn
            "churn:batches=2,size=8,ins=1.5,seed=1@gnp:n=10,p=0.1,seed=1", // frac
            "churn:batches=2,size=8,ins=0.5,seed=1,extra=1@gnp:n=10,p=0.1,seed=1",
        ] {
            assert!(bad.parse::<ChurnSpec>().is_err(), "{bad}");
        }
    }

    #[test]
    fn schedule_is_deterministic_and_applies_cleanly() {
        let spec = ChurnSpec::balanced(WorkloadSpec::gnp(150, 0.04, 5), 5, 24, 77);
        let g0 = build(&spec.base);
        let batches_a = spec.schedule(&g0);
        let batches_b = spec.schedule(&g0);
        assert_eq!(batches_a, batches_b);
        assert_eq!(batches_a.len(), 5);
        let mut g = g0.clone();
        for (i, batch) in batches_a.iter().enumerate() {
            assert!(!batch.is_empty(), "batch {i} empty");
            g.apply_delta(batch)
                .unwrap_or_else(|e| panic!("batch {i} failed: {e}"));
        }
        assert_ne!(g.comm().edges(), g0.comm().edges());
    }

    #[test]
    fn different_seeds_differ() {
        let base = WorkloadSpec::gnp(120, 0.05, 5);
        let g = build(&base);
        let a = ChurnSpec::balanced(base, 3, 16, 1).schedule(&g);
        let b = ChurnSpec::balanced(base, 3, 16, 2).schedule(&g);
        assert_ne!(a, b);
    }

    #[test]
    fn deletes_only_inter_cluster_edges() {
        // Star(3) layout: clusters of several machines, so intra edges
        // exist and must never be deleted.
        let mut base = WorkloadSpec::gnp(80, 0.08, 9);
        base.layout = crate::Layout::Star(3);
        let g = build(&base);
        let spec = ChurnSpec {
            base,
            batches: 4,
            batch_size: 30,
            insert_frac: 0.0,
            seed: 13,
        };
        for batch in spec.schedule(&g) {
            for &(a, b) in batch.deletes() {
                assert_ne!(g.cluster_of(a), g.cluster_of(b), "intra delete ({a},{b})");
            }
        }
    }
}
