//! Row-sharded parallel edge generation.
//!
//! Generators in this crate derive one RNG stream per *row* (source
//! vertex) from the master seed, so a row's edges are a pure function of
//! `(seed, row)`. That makes parallel generation trivially deterministic:
//! split the rows into contiguous shards, let each worker emit its rows'
//! edges into a private buffer, and concatenate the buffers in fixed shard
//! order — the edge list is identical at any thread count, and
//! [`crate::HSpec::new`] normalizes it either way.

use cgc_cluster::ParallelConfig;

/// Runs `row(u, &mut buf)` for every `u in 0..n`, sharded across the
/// configured threads, returning the concatenation of all rows' output in
/// ascending row order. Rows are split into contiguous blocks of equal
/// *count*; pass [`par_rows_weighted`] when per-row work is skewed.
pub(crate) fn par_rows<T: Send>(
    n: usize,
    par: &ParallelConfig,
    row: impl Fn(usize, &mut Vec<T>) + Sync,
) -> Vec<T> {
    par_rows_weighted(n, par, None, row)
}

/// [`par_rows`] with contiguous row blocks balanced by `weights` (expected
/// per-row work) instead of row count, so a heavy head — e.g. the hubs of
/// a power-law weight sequence — does not serialize shard 0. The shard
/// bounds are a pure function of `(weights, thread count)`, and the output
/// is the ascending-row concatenation either way, so the result never
/// depends on the split.
pub(crate) fn par_rows_weighted<T: Send>(
    n: usize,
    par: &ParallelConfig,
    weights: Option<&[f64]>,
    row: impl Fn(usize, &mut Vec<T>) + Sync,
) -> Vec<T> {
    let shards = par.threads().min(n.max(1));
    if shards <= 1 {
        let mut out = Vec::new();
        for u in 0..n {
            row(u, &mut out);
        }
        return out;
    }
    let mut bounds: Vec<usize> = Vec::with_capacity(shards + 1);
    bounds.push(0);
    match weights {
        None => bounds.extend((1..shards).map(|s| s * n / shards)),
        Some(w) => {
            assert_eq!(w.len(), n, "one weight per row");
            let total: f64 = w.iter().sum();
            let mut cum = 0.0;
            let mut v = 0usize;
            for s in 1..shards {
                let target = s as f64 * total / shards as f64;
                while v < n && cum < target {
                    cum += w[v];
                    v += 1;
                }
                bounds.push(v);
            }
        }
    }
    bounds.push(n);
    let mut buffers: Vec<Vec<T>> = (0..shards).map(|_| Vec::new()).collect();
    std::thread::scope(|scope| {
        let row = &row;
        let mut local = None;
        for (s, buf) in buffers.iter_mut().enumerate() {
            let range = bounds[s]..bounds[s + 1];
            if s == 0 {
                local = Some((range, buf));
            } else {
                scope.spawn(move || {
                    for u in range {
                        row(u, buf);
                    }
                });
            }
        }
        if let Some((range, buf)) = local {
            for u in range {
                row(u, buf);
            }
        }
    });
    let total = buffers.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for buf in buffers {
        out.extend(buf);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concatenation_is_row_ordered_at_any_thread_count() {
        let reference = par_rows(100, &ParallelConfig::serial(), |u, out| {
            for j in 0..(u % 5) {
                out.push((u, j));
            }
        });
        for threads in [2, 3, 8, 33] {
            let got = par_rows(100, &ParallelConfig::with_threads(threads), |u, out| {
                for j in 0..(u % 5) {
                    out.push((u, j));
                }
            });
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn weighted_split_matches_unweighted_output() {
        // Hub-heavy weights: the split differs, the output must not.
        let weights: Vec<f64> = (0..100).map(|u| 1.0 / (u + 1) as f64).collect();
        let reference = par_rows(100, &ParallelConfig::serial(), |u, out| {
            out.push(u * 3);
        });
        for threads in [2, 4, 9] {
            let got = par_rows_weighted(
                100,
                &ParallelConfig::with_threads(threads),
                Some(&weights),
                |u, out| {
                    out.push(u * 3);
                },
            );
            assert_eq!(got, reference, "threads={threads}");
        }
    }
}
