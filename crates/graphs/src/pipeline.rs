//! The sharded generation-to-graph edge pipeline.
//!
//! Every workload family flows through one discipline — *generate
//! per-shard edge runs, canonicalize shard-locally, merge
//! deterministically*:
//!
//! ```text
//! WorkloadSpec ──▶ ShardedEdgeSource ──▶ HSpec (canonical H-edges)
//!                  (per-row kernels,      │
//!                   per-shard runs)       ▼ layout expansion (realize_runs)
//!                                  ShardedEdgeSource (machine links)
//!                                         │
//!                                         ▼ CommGraph::from_edge_runs_with
//!                                  CommGraph ──▶ ClusterGraph::build_with
//! ```
//!
//! Generators in this crate derive one RNG stream per *row* (source
//! vertex) from the master seed, so a row's edges are a pure function of
//! `(seed, row)`. That makes parallel generation trivially deterministic:
//! split the rows into contiguous shards, let each worker emit its rows'
//! edges into a private run, and keep the runs in fixed shard order — the
//! logical edge sequence is identical at any thread count, and the
//! canonicalization steps downstream ([`ShardedEdgeSource::into_hspec`],
//! [`cgc_net::CommGraph::from_edge_runs_with`]) produce the unique sorted
//! dedup of that sequence regardless of where the run boundaries fall.
//! Sharded stages dispatch on the process-global persistent
//! [`WorkerPool`], the same parked workers every aggregation round uses.

use crate::layouts::HSpec;
use cgc_net::{kway_merge_dedup, map_reduce_on, ParallelConfig, ShardPlan, WorkerPool};

/// Per-shard edge runs: the intermediate product of every sharded
/// generator, handed to the canonicalizing sinks without being
/// concatenated into one edge `Vec` first. The logical edge sequence is
/// the concatenation of the runs in order; the runs themselves are an
/// execution detail that never changes any downstream result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedEdgeSource {
    n: usize,
    runs: Vec<Vec<(usize, usize)>>,
}

impl ShardedEdgeSource {
    /// Wraps an already-materialized edge list as a single run (the
    /// serial generators' entry into the pipeline).
    pub fn from_edges(n: usize, edges: Vec<(usize, usize)>) -> Self {
        ShardedEdgeSource {
            n,
            runs: vec![edges],
        }
    }

    /// Runs `row(u, &mut run)` for every `u in 0..n`, sharded across the
    /// configured threads (contiguous row blocks of equal *count*),
    /// keeping each shard's output as its own run in ascending row order.
    /// `row` must be pure — the runs are a pure function of `(n, row)`,
    /// never of the thread count. Pass [`Self::from_rows_weighted`] when
    /// per-row work is skewed.
    pub fn from_rows(
        n: usize,
        par: &ParallelConfig,
        row: impl Fn(usize, &mut Vec<(usize, usize)>) + Sync,
    ) -> Self {
        Self::from_rows_weighted(n, par, None, row)
    }

    /// [`Self::from_rows`] with contiguous row blocks balanced by
    /// `weights` (expected per-row work) instead of row count, so a heavy
    /// head — the hubs of a power-law weight sequence, the long early
    /// rows of a G(n, p) upper triangle — does not serialize shard 0. The
    /// shard bounds are a pure function of `(weights, thread count)`, and
    /// the logical output is the ascending-row concatenation either way.
    pub fn from_rows_weighted(
        n: usize,
        par: &ParallelConfig,
        weights: Option<&[f64]>,
        row: impl Fn(usize, &mut Vec<(usize, usize)>) + Sync,
    ) -> Self {
        let plan = match weights {
            None => ShardPlan::even(n, par.threads()),
            Some(w) => {
                assert_eq!(w.len(), n, "one weight per row");
                // Scale the float weights onto a fixed-point prefix so the
                // generic balanced-prefix cut applies; the scale only
                // affects the (output-invisible) shard bounds.
                let total: f64 = w.iter().sum();
                let scale = if total > 0.0 {
                    ((1u64 << 32) as f64) / total
                } else {
                    0.0
                };
                let mut prefix = Vec::with_capacity(n + 1);
                prefix.push(0usize);
                let mut acc = 0usize;
                for &x in w {
                    acc += (x * scale) as usize;
                    prefix.push(acc);
                }
                ShardPlan::from_prefix(&prefix, par.threads())
            }
        };
        let pool = WorkerPool::global(par.threads());
        let runs = map_reduce_on(
            &plan,
            pool.as_deref(),
            |range| {
                let mut run = Vec::new();
                for u in range {
                    row(u, &mut run);
                }
                vec![run]
            },
            |acc: &mut Vec<Vec<(usize, usize)>>, part| acc.extend(part),
        );
        ShardedEdgeSource { n, runs }
    }

    /// [`Self::from_rows_weighted`] with heavy rows split into independent
    /// column-range **tasks** — the generator-side half of hub-proof
    /// sharding. Row `u` becomes `k_u = ceil(w_u / quantum)` tasks (at
    /// least 1; rows at or under the quantum stay whole), and `task(u, j,
    /// k_u, &mut run)` runs once per task in ascending `(row, j)` order
    /// across shards, so a single hub row's emission spreads over several
    /// workers instead of bounding one shard.
    ///
    /// Two purity rules make this thread-count independent:
    ///
    /// * `quantum` must be a pure function of the weights (e.g.
    ///   `Σw / 1024`), **never** of the thread count — the task list, and
    ///   with it the logical output (the ascending-task concatenation of
    ///   the runs), must not change when only the executor width does;
    /// * the kernel must derive each task's randomness from a substream
    ///   keyed by `(u, j)` (the generators use
    ///   [`cgc_net::SeedStream::child`] namespacing for `k_u > 1`, keeping
    ///   unsplit rows byte-compatible with their historical per-row
    ///   streams), so tasks are independent wherever the shard bounds
    ///   fall.
    pub fn from_row_tasks_weighted(
        n: usize,
        par: &ParallelConfig,
        weights: &[f64],
        quantum: f64,
        task: impl Fn(usize, u32, u32, &mut Vec<(usize, usize)>) + Sync,
    ) -> Self {
        assert_eq!(weights.len(), n, "one weight per row");
        // Fixed-point per-task weight prefix (the from_rows_weighted
        // scaling, split evenly over each row's tasks) so the generic
        // balanced-prefix cut applies to tasks.
        let total: f64 = weights.iter().sum();
        let scale = if total > 0.0 {
            ((1u64 << 32) as f64) / total
        } else {
            0.0
        };
        let mut tasks: Vec<(usize, u32, u32)> = Vec::with_capacity(n);
        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(0usize);
        let mut acc = 0usize;
        for (u, &wu) in weights.iter().enumerate() {
            let k = if quantum > 0.0 && wu > quantum {
                (wu / quantum).ceil() as u32
            } else {
                1
            };
            for j in 0..k {
                tasks.push((u, j, k));
                acc += (wu * scale / k as f64) as usize;
                prefix.push(acc);
            }
        }
        let plan = ShardPlan::from_prefix(&prefix, par.threads());
        let pool = WorkerPool::global(par.threads());
        let tasks = &tasks;
        let runs = map_reduce_on(
            &plan,
            pool.as_deref(),
            |range| {
                let mut run = Vec::new();
                for &(u, j, k) in &tasks[range] {
                    task(u, j, k, &mut run);
                }
                vec![run]
            },
            |acc: &mut Vec<Vec<(usize, usize)>>, part| acc.extend(part),
        );
        ShardedEdgeSource { n, runs }
    }

    /// Vertex count of the graph the edges live on.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total edges across all runs (before any deduplication).
    pub fn total_edges(&self) -> usize {
        self.runs.iter().map(Vec::len).sum()
    }

    /// The per-shard runs, in logical order.
    #[inline]
    pub fn runs(&self) -> &[Vec<(usize, usize)>] {
        &self.runs
    }

    /// The runs as borrowed slices — the shape
    /// [`cgc_net::CommGraph::from_edge_runs_with`] ingests.
    pub fn run_slices(&self) -> Vec<&[(usize, usize)]> {
        self.runs.iter().map(Vec::as_slice).collect()
    }

    /// Appends one more run after the sharded ones (e.g. the serially
    /// generated inter-cluster link run of a layout expansion).
    pub fn push_run(&mut self, run: Vec<(usize, usize)>) {
        self.runs.push(run);
    }

    /// Concatenates the runs into one edge `Vec` in logical order — the
    /// legacy shape, for callers that need a flat list.
    pub fn concat(self) -> Vec<(usize, usize)> {
        let total = self.total_edges();
        let mut out = Vec::with_capacity(total);
        for run in self.runs {
            out.extend(run);
        }
        out
    }

    /// Canonicalizes into an [`HSpec`]: validates, normalizes orientation,
    /// sorts and deduplicates each shard's slice of the runs locally, then
    /// merges the sorted runs with the deterministic fixed-order k-way
    /// merge. The result equals `HSpec::new(n, concatenation)` exactly, at
    /// any thread count and for any run partition.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints, like
    /// [`HSpec::new`] (under a parallel `par` the panic may surface with
    /// the pool's generic message instead of the edge's own).
    pub fn into_hspec(self, par: &ParallelConfig) -> HSpec {
        let n = self.n;
        let plan = ShardPlan::even(self.runs.len(), par.threads());
        let pool = WorkerPool::global(par.threads());
        let runs = &self.runs;
        let sorted = map_reduce_on(
            &plan,
            pool.as_deref(),
            |range| {
                let mut canon: Vec<(usize, usize)> =
                    Vec::with_capacity(runs[range.clone()].iter().map(Vec::len).sum());
                for run in &runs[range] {
                    for &(u, v) in run {
                        assert!(u != v, "self-loop {u}");
                        assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
                        canon.push((u.min(v), u.max(v)));
                    }
                }
                canon.sort_unstable();
                canon.dedup();
                vec![canon]
            },
            |acc: &mut Vec<Vec<(usize, usize)>>, part| acc.extend(part),
        );
        HSpec {
            n,
            edges: kway_merge_dedup(sorted),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_are_row_ordered_at_any_thread_count() {
        let kernel = |u: usize, out: &mut Vec<(usize, usize)>| {
            for j in 0..(u % 5) {
                out.push((u, u + j + 1));
            }
        };
        let reference =
            ShardedEdgeSource::from_rows(90, &ParallelConfig::serial(), kernel).concat();
        for threads in [2, 3, 8, 33] {
            let got =
                ShardedEdgeSource::from_rows(90, &ParallelConfig::with_threads(threads), kernel)
                    .concat();
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn weighted_split_matches_unweighted_output() {
        // Hub-heavy weights: the split differs, the logical output must not.
        let weights: Vec<f64> = (0..100).map(|u| 1.0 / (u + 1) as f64).collect();
        let kernel = |u: usize, out: &mut Vec<(usize, usize)>| {
            out.push((u, (u + 1) % 100));
        };
        let reference =
            ShardedEdgeSource::from_rows(100, &ParallelConfig::serial(), kernel).concat();
        for threads in [2, 4, 9] {
            let got = ShardedEdgeSource::from_rows_weighted(
                100,
                &ParallelConfig::with_threads(threads),
                Some(&weights),
                kernel,
            )
            .concat();
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn into_hspec_equals_hspec_new_for_any_partition() {
        // Duplicates within and across runs, both orientations.
        let edges = vec![(3, 1), (1, 3), (0, 2), (4, 0), (2, 0), (1, 4), (3, 4)];
        let expect = HSpec::new(5, edges.clone());
        for cut in [1usize, 2, 3, 7] {
            let mut src = ShardedEdgeSource::from_edges(5, Vec::new());
            src.runs.clear();
            for chunk in edges.chunks(edges.len() / cut + 1) {
                src.push_run(chunk.to_vec());
            }
            for threads in [1, 2, 4] {
                let got = src
                    .clone()
                    .into_hspec(&ParallelConfig::with_threads(threads));
                assert_eq!(got, expect, "cut={cut} threads={threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn into_hspec_rejects_self_loops() {
        ShardedEdgeSource::from_edges(3, vec![(1, 1)]).into_hspec(&ParallelConfig::serial());
    }
}
