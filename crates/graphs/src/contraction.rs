//! Edge-contraction instances — the flow-algorithm scenario (§1.1).
//!
//! Maximum-flow and network-decomposition algorithms repeatedly *contract*
//! connected machine sets; the contracted graph is exactly a cluster graph
//! over the original network, with clusters of wildly uneven shapes and
//! many parallel links between the same pair of clusters (Figure 1). This
//! family builds that instance from first principles: a `side × side`
//! grid network — the canonical flow substrate — contracted along seeded
//! connected *blobs* grown to a random target size in `lo..=hi`.
//!
//! Unlike the generator families, the contraction **is** the layout:
//! clusters come from the blob map, not from a [`crate::Layout`]
//! expansion, so the family constructs its [`ClusterGraph`] directly
//! (like [`crate::adversarial`]) and the workload grammar rejects
//! `layout`/`links` keys for it. The grid wiring shards by grid rows
//! through the pipeline; the blob growth is one serial seeded sweep.

use crate::pipeline::ShardedEdgeSource;
use cgc_cluster::{ClusterGraph, ParallelConfig};
use cgc_net::{CommGraph, SeedStream};
use rand::RngExt;

/// Builds the contracted grid instance sequentially.
///
/// # Panics
///
/// Panics if `side == 0` or `lo` is not in `1..=hi`.
pub fn contraction_instance(side: usize, lo: usize, hi: usize, seed: u64) -> ClusterGraph {
    contraction_instance_with(side, lo, hi, seed, &ParallelConfig::serial())
}

/// [`contraction_instance`] with the grid wiring, edge canonicalization
/// and [`ClusterGraph::build_with`] phases sharded over `par`'s threads
/// (bit-identical output at any count).
pub fn contraction_instance_with(
    side: usize,
    lo: usize,
    hi: usize,
    seed: u64,
    par: &ParallelConfig,
) -> ClusterGraph {
    let (n_machines, runs, assignment) = contraction_runs(side, lo, hi, seed, par);
    let comm = CommGraph::from_edge_runs_with(n_machines, &runs.run_slices(), par)
        .expect("grid wiring is valid");
    ClusterGraph::build_with(comm, assignment, par).expect("blobs are connected by construction")
}

/// The raw generation half of [`contraction_instance_with`]: machine
/// count, per-shard grid-wiring runs (vertex `v` emits its right and down
/// links — a pure function of `v`) and the blob machine→cluster
/// assignment (one serial seeded BFS-stack sweep).
///
/// # Panics
///
/// As [`contraction_instance`].
pub(crate) fn contraction_runs(
    side: usize,
    lo: usize,
    hi: usize,
    seed: u64,
    par: &ParallelConfig,
) -> (usize, ShardedEdgeSource, Vec<usize>) {
    assert!(side > 0, "need a nonempty grid");
    assert!(lo >= 1 && lo <= hi, "need 1 <= lo <= hi, got {lo}..={hi}");
    let n = side * side;
    let runs = ShardedEdgeSource::from_rows(n, par, move |v, out| {
        let (r, c) = (v / side, v % side);
        if c + 1 < side {
            out.push((v, v + 1));
        }
        if r + 1 < side {
            out.push((v, v + side));
        }
    });

    // Contract random connected blobs: grow regions of lo..=hi machines
    // from each yet-unassigned vertex, exactly what a blocking-flow phase
    // produces. The growth is a stack walk over the (ascending) grid
    // neighbors, deterministic in the seed. Each blob draws its target
    // size from its own substream keyed by the blob's start machine — the
    // same per-entity protocol as the generators' per-row streams — so no
    // single RNG cursor threads through the sweep. (The sweep itself stays
    // serial and that is inherent, not an implementation gap: whether a
    // machine starts a blob depends on every earlier blob's extent.)
    let blob_seeds = SeedStream::new(seed).child(0x00C0_47AC);
    let mut assignment = vec![usize::MAX; n];
    let mut next_cluster = 0usize;
    let mut frontier: Vec<usize> = Vec::new();
    for start in 0..n {
        if assignment[start] != usize::MAX {
            continue;
        }
        let target = blob_seeds.rng_for(start as u64, 0).random_range(lo..=hi);
        let mut grabbed = 0usize;
        frontier.clear();
        frontier.push(start);
        while let Some(v) = frontier.pop() {
            if assignment[v] != usize::MAX || grabbed == target {
                continue;
            }
            assignment[v] = next_cluster;
            grabbed += 1;
            let (r, c) = (v / side, v % side);
            if r > 0 && assignment[v - side] == usize::MAX {
                frontier.push(v - side);
            }
            if c > 0 && assignment[v - 1] == usize::MAX {
                frontier.push(v - 1);
            }
            if c + 1 < side && assignment[v + 1] == usize::MAX {
                frontier.push(v + 1);
            }
            if r + 1 < side && assignment[v + side] == usize::MAX {
                frontier.push(v + side);
            }
        }
        next_cluster += 1;
    }
    (n, runs, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_cover_the_grid_within_bounds() {
        let g = contraction_instance(16, 4, 12, 3141);
        assert_eq!(g.n_machines(), 256);
        assert!(g.n_vertices() >= 256 / 12);
        let mut sizes = vec![0usize; g.n_vertices()];
        for m in 0..g.n_machines() {
            sizes[g.cluster_of(m)] += 1;
        }
        assert_eq!(sizes.iter().sum::<usize>(), 256);
        assert!(
            sizes.iter().all(|&s| (1..=12).contains(&s)),
            "blob sizes {sizes:?}"
        );
    }

    #[test]
    fn contraction_exhibits_parallel_links() {
        // Wide blobs along a grid boundary share several grid links —
        // the Figure 1 multi-link phenomenon the family exists to show.
        let g = contraction_instance(20, 4, 12, 7);
        let max_mult = g
            .h_edges()
            .map(|(u, v)| g.link_multiplicity(u, v))
            .max()
            .unwrap_or(0);
        assert!(max_mult >= 2, "max multiplicity {max_mult}");
    }

    #[test]
    fn deterministic_in_seed_and_thread_count() {
        let reference = contraction_instance(12, 2, 6, 5);
        assert_eq!(contraction_instance(12, 2, 6, 5), reference);
        assert_ne!(
            contraction_instance(12, 2, 6, 6).n_vertices(),
            0,
            "different seed still builds"
        );
        for threads in [2, 4, 8] {
            let got =
                contraction_instance_with(12, 2, 6, 5, &ParallelConfig::with_threads(threads));
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "1 <= lo <= hi")]
    fn inverted_bounds_rejected() {
        contraction_instance(8, 5, 3, 1);
    }
}
