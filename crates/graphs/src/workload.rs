//! Addressable workload specifications: every generator family behind one
//! typed value with a canonical compact string form.
//!
//! A [`WorkloadSpec`] names a complete, reproducible instance: the
//! generator family and its parameters ([`WorkloadFamily`]), the cluster
//! [`Layout`] it is realized over, the link multiplicity, and the seed
//! that drives both the generator and the realization. `Display` and
//! `FromStr` round-trip exactly (`spec.to_string().parse() == spec`), so a
//! workload is CLI-, env- and JSON-addressable — the string printed in an
//! experiment table is everything needed to rebuild the instance:
//!
//! ```
//! use cgc_graphs::WorkloadSpec;
//!
//! let spec: WorkloadSpec = "powerlaw:n=5000,beta=2.5,avg=8,seed=7".parse().unwrap();
//! assert_eq!(spec.to_string(), "powerlaw:n=5000,beta=2.5,avg=8,seed=7");
//! let g = spec.build();
//! assert_eq!(g.n_vertices(), 5000);
//! ```
//!
//! The grammar is `family:key=value,...` with families `gnp`, `powerlaw`,
//! `rgg`, `planted`, `mixture`, `cabal`, `bottleneck`, `square` and
//! `contraction`, plus the optional cross-family keys `layout` (`single`,
//! `path8`, `star4`, `tree15` — omitted when `single`) and `links`
//! (omitted when `1`). `seed` is always printed: a run is reproducible
//! from its table row.
//!
//! Every family builds through one streaming pipeline (see
//! [`crate::pipeline`]): generate per-shard edge runs → canonicalize →
//! [`cgc_net::CommGraph::from_edge_runs_with`] →
//! [`ClusterGraph::build_with`], all sharded over the caller's
//! [`ParallelConfig`] with thread-count-independent output.
//! [`WorkloadSpec::build_timed`] reports the per-phase wall clock as
//! [`SetupTimings`].

use crate::adversarial::bottleneck_runs;
use crate::contraction::contraction_runs;
use crate::gnp::gnp_runs;
use crate::layouts::{realize_runs, HSpec, Layout};
use crate::pipeline::ShardedEdgeSource;
use crate::planted::{cabal_runs, mixture_runs, planted_cliques_runs, MixtureConfig, PlantedInfo};
use crate::power::square_runs;
use crate::powerlaw::{power_law_runs, PowerLawConfig};
use crate::rgg::geometric_runs;
use cgc_cluster::{ClusterGraph, ParallelConfig};
use cgc_net::CommGraph;
use std::fmt;
use std::str::FromStr;
use std::time::Instant;

/// The generator family and its parameters — one variant per workload
/// family the experiments exercise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadFamily {
    /// Erdős–Rényi `G(n, p)`.
    Gnp {
        /// Vertices.
        n: usize,
        /// Edge probability.
        p: f64,
    },
    /// Chung–Lu power-law with exponent `beta` and target average degree.
    PowerLaw {
        /// Vertices.
        n: usize,
        /// Degree exponent `β > 2`.
        beta: f64,
        /// Target average degree.
        avg: f64,
    },
    /// Random geometric graph on the unit square with hard radius `r`.
    Rgg {
        /// Vertices.
        n: usize,
        /// Connection radius in `(0, 1]`.
        r: f64,
    },
    /// `c` disjoint perfect `k`-cliques under a seeded label permutation.
    Planted {
        /// Blocks.
        c: usize,
        /// Members per block.
        k: usize,
    },
    /// Reed-style mixture: dense blocks with anti/external edges plus a
    /// sparse background (see [`MixtureConfig`]).
    Mixture {
        /// Dense blocks.
        c: usize,
        /// Members per block.
        k: usize,
        /// Intra-block edge drop probability.
        anti: f64,
        /// External edges per dense vertex (cap).
        ext: usize,
        /// Background vertex count.
        bg: usize,
        /// Background edge probability.
        bgp: f64,
    },
    /// Cabal-heavy instance: blocks with a planted anti-matching and few
    /// external edges.
    Cabal {
        /// Blocks.
        c: usize,
        /// Members per block.
        k: usize,
        /// Disjoint anti-edge pairs per block.
        anti: usize,
        /// Total inter-block edges.
        ext: usize,
    },
    /// The Figure 2/3 adversarial bottleneck-link instance (complete
    /// conflict graph over path clusters; fixes its own layout).
    Bottleneck {
        /// Clusters (conflict-graph vertices).
        clusters: usize,
        /// Machines per path cluster (`≥ 2`).
        path: usize,
    },
    /// The square `G²` of a `G(n, p)` base graph (distance-2 coloring).
    Square {
        /// Base-graph vertices.
        n: usize,
        /// Base-graph edge probability.
        p: f64,
    },
    /// A `side × side` grid network contracted along seeded connected
    /// blobs of `lo..=hi` machines (the §1.1 flow scenario; fixes its own
    /// layout).
    Contraction {
        /// Grid side length (`side²` machines).
        side: usize,
        /// Minimum blob size (`≥ 1`).
        lo: usize,
        /// Maximum blob size (`≥ lo`).
        hi: usize,
    },
}

impl WorkloadFamily {
    /// Canonical family tag (the part before `:` in the string form).
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadFamily::Gnp { .. } => "gnp",
            WorkloadFamily::PowerLaw { .. } => "powerlaw",
            WorkloadFamily::Rgg { .. } => "rgg",
            WorkloadFamily::Planted { .. } => "planted",
            WorkloadFamily::Mixture { .. } => "mixture",
            WorkloadFamily::Cabal { .. } => "cabal",
            WorkloadFamily::Bottleneck { .. } => "bottleneck",
            WorkloadFamily::Square { .. } => "square",
            WorkloadFamily::Contraction { .. } => "contraction",
        }
    }

    /// Whether this family constructs its [`ClusterGraph`] directly —
    /// the contraction *is* the layout — so `layout`/`links` keys do not
    /// apply (`bottleneck`, `contraction`).
    pub fn fixes_layout(&self) -> bool {
        matches!(
            self,
            WorkloadFamily::Bottleneck { .. } | WorkloadFamily::Contraction { .. }
        )
    }
}

/// A complete instance address: family + layout + link multiplicity +
/// seed. See the [module docs](self) for the string grammar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Generator family and parameters.
    pub family: WorkloadFamily,
    /// Cluster topology the conflict graph is realized over (ignored — and
    /// required to be [`Layout::Singleton`] — for `bottleneck` and
    /// `contraction`, which fix their own layouts).
    pub layout: Layout,
    /// `G`-links per `H`-edge (Figure 1 multiplicity).
    pub links: usize,
    /// Seed driving generator *and* realization: the single source of
    /// workload randomness.
    pub seed: u64,
}

/// Error from parsing a workload spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadParseError(pub(crate) String);

impl fmt::Display for WorkloadParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workload spec: {}", self.0)
    }
}

impl std::error::Error for WorkloadParseError {}

impl WorkloadSpec {
    /// Spec with the given family, singleton layout, single links.
    pub fn new(family: WorkloadFamily, seed: u64) -> Self {
        WorkloadSpec {
            family,
            layout: Layout::Singleton,
            links: 1,
            seed,
        }
    }

    /// `G(n, p)` spec.
    pub fn gnp(n: usize, p: f64, seed: u64) -> Self {
        Self::new(WorkloadFamily::Gnp { n, p }, seed)
    }

    /// Chung–Lu power-law spec.
    pub fn power_law(n: usize, beta: f64, avg: f64, seed: u64) -> Self {
        Self::new(WorkloadFamily::PowerLaw { n, beta, avg }, seed)
    }

    /// Random geometric spec.
    pub fn rgg(n: usize, r: f64, seed: u64) -> Self {
        Self::new(WorkloadFamily::Rgg { n, r }, seed)
    }

    /// Planted perfect cliques spec.
    pub fn planted_cliques(c: usize, k: usize, seed: u64) -> Self {
        Self::new(WorkloadFamily::Planted { c, k }, seed)
    }

    /// Reed-style mixture spec from a [`MixtureConfig`].
    pub fn mixture(cfg: &MixtureConfig, seed: u64) -> Self {
        Self::new(
            WorkloadFamily::Mixture {
                c: cfg.n_cliques,
                k: cfg.clique_size,
                anti: cfg.anti_edge_prob,
                ext: cfg.external_per_vertex,
                bg: cfg.sparse_n,
                bgp: cfg.sparse_p,
            },
            seed,
        )
    }

    /// Cabal-heavy spec.
    pub fn cabal(c: usize, k: usize, anti_pairs: usize, ext_edges: usize, seed: u64) -> Self {
        Self::new(
            WorkloadFamily::Cabal {
                c,
                k,
                anti: anti_pairs,
                ext: ext_edges,
            },
            seed,
        )
    }

    /// Adversarial bottleneck spec (seed kept for string uniformity; the
    /// instance is deterministic).
    pub fn bottleneck(clusters: usize, path_len: usize) -> Self {
        Self::new(
            WorkloadFamily::Bottleneck {
                clusters,
                path: path_len,
            },
            0,
        )
    }

    /// Square-of-`G(n, p)` spec.
    pub fn square_gnp(n: usize, p: f64, seed: u64) -> Self {
        Self::new(WorkloadFamily::Square { n, p }, seed)
    }

    /// Contracted-grid spec (the §1.1 flow scenario): a `side × side`
    /// grid contracted along seeded blobs of `lo..=hi` machines.
    pub fn contraction(side: usize, lo: usize, hi: usize, seed: u64) -> Self {
        Self::new(WorkloadFamily::Contraction { side, lo, hi }, seed)
    }

    /// Replaces the layout (builder style).
    ///
    /// # Panics
    ///
    /// Panics for `bottleneck`/`contraction` specs, which fix their own
    /// layouts.
    pub fn with_layout(mut self, layout: Layout) -> Self {
        assert!(
            !self.family.fixes_layout(),
            "{} fixes its own layout",
            self.family.name()
        );
        self.layout = layout;
        self
    }

    /// Replaces the link multiplicity (builder style).
    pub fn with_links(mut self, links: usize) -> Self {
        assert!(links > 0, "need at least one link per edge");
        self.links = links;
        self
    }

    /// Replaces the seed (builder style) — sweeping instance seeds over a
    /// fixed shape is `spec.with_seed(s)`.
    ///
    /// # Panics
    ///
    /// Panics for `bottleneck` specs: the instance is deterministic, and
    /// keeping its seed pinned at 0 keeps the string address unique.
    pub fn with_seed(mut self, seed: u64) -> Self {
        assert!(
            !matches!(self.family, WorkloadFamily::Bottleneck { .. }),
            "bottleneck instances are deterministic; their seed stays 0"
        );
        self.seed = seed;
        self
    }

    /// The raw per-shard `H`-edge runs plus planted ground truth, before
    /// canonicalization — the generation stage of the pipeline. `None`
    /// for the families that construct their [`ClusterGraph`] directly
    /// (`bottleneck`, `contraction`).
    fn conflict_runs_with(
        &self,
        par: &ParallelConfig,
    ) -> Option<(ShardedEdgeSource, Option<PlantedInfo>)> {
        match self.family {
            WorkloadFamily::Gnp { n, p } => Some((gnp_runs(n, p, self.seed, par), None)),
            WorkloadFamily::PowerLaw { n, beta, avg } => {
                let cfg = PowerLawConfig {
                    n,
                    exponent: beta,
                    avg_degree: avg,
                };
                Some((power_law_runs(&cfg, self.seed, par), None))
            }
            WorkloadFamily::Rgg { n, r } => Some((geometric_runs(n, r, self.seed, par), None)),
            WorkloadFamily::Planted { c, k } => {
                let (src, info) = planted_cliques_runs(c, k, self.seed);
                Some((src, Some(info)))
            }
            WorkloadFamily::Mixture {
                c,
                k,
                anti,
                ext,
                bg,
                bgp,
            } => {
                let cfg = MixtureConfig {
                    n_cliques: c,
                    clique_size: k,
                    anti_edge_prob: anti,
                    external_per_vertex: ext,
                    sparse_n: bg,
                    sparse_p: bgp,
                };
                let (src, info) = mixture_runs(&cfg, self.seed);
                Some((src, Some(info)))
            }
            WorkloadFamily::Cabal { c, k, anti, ext } => {
                let (src, info) = cabal_runs(c, k, anti, ext, self.seed);
                Some((src, Some(info)))
            }
            WorkloadFamily::Bottleneck { .. } | WorkloadFamily::Contraction { .. } => None,
            WorkloadFamily::Square { n, p } => {
                // The base G(n, p) must be canonical before squaring, so
                // its mini-pipeline runs inside the generation stage.
                let base = gnp_runs(n, p, self.seed, par).into_hspec(par);
                Some((square_runs(&base, par), None))
            }
        }
    }

    /// The conflict-graph spec (`H`) plus planted ground truth, before
    /// layout realization. `None` for `bottleneck`/`contraction`, which
    /// construct their [`ClusterGraph`]s directly.
    pub fn conflict_spec_with(&self, par: &ParallelConfig) -> Option<(HSpec, Option<PlantedInfo>)> {
        self.conflict_runs_with(par)
            .map(|(src, info)| (src.into_hspec(par), info))
    }

    /// [`Self::conflict_spec_with`] under the sequential executor.
    pub fn conflict_spec(&self) -> Option<(HSpec, Option<PlantedInfo>)> {
        self.conflict_spec_with(&ParallelConfig::serial())
    }

    /// Builds the instance: generator plus layout realization. The whole
    /// pipeline — generation, canonicalization, `ClusterGraph` build —
    /// shards over `par`'s threads; the result is a pure function of the
    /// spec, never of the thread count.
    ///
    /// # Panics
    ///
    /// Panics when the family parameters violate a generator precondition
    /// (e.g. `p` outside `[0, 1]`, `beta ≤ 2`, an empty spec).
    pub fn build_with(&self, par: &ParallelConfig) -> ClusterGraph {
        self.build_with_info(par).0
    }

    /// [`Self::build_with`] under the sequential executor.
    pub fn build(&self) -> ClusterGraph {
        self.build_with(&ParallelConfig::serial())
    }

    /// Builds the instance and returns the planted ground truth alongside
    /// (for families that have one).
    pub fn build_with_info(&self, par: &ParallelConfig) -> (ClusterGraph, Option<PlantedInfo>) {
        let (graph, info, _) = self.build_timed(par);
        (graph, info)
    }

    /// [`Self::build_with_info`] also reporting per-phase [`SetupTimings`]
    /// — the generate / canonicalize / build split the roadmap's setup
    /// bottleneck is tracked by.
    pub fn build_timed(
        &self,
        par: &ParallelConfig,
    ) -> (ClusterGraph, Option<PlantedInfo>, SetupTimings) {
        let total_start = Instant::now();
        let mut generate_secs = 0.0;
        let mut canonicalize_secs = 0.0;
        let (n_machines, runs, assignment, info) = match self.family {
            WorkloadFamily::Bottleneck { clusters, path } => {
                let t = Instant::now();
                let (n, runs, assignment) = bottleneck_runs(clusters, path, par);
                generate_secs += t.elapsed().as_secs_f64();
                (n, runs, assignment, None)
            }
            WorkloadFamily::Contraction { side, lo, hi } => {
                let t = Instant::now();
                let (n, runs, assignment) = contraction_runs(side, lo, hi, self.seed, par);
                generate_secs += t.elapsed().as_secs_f64();
                (n, runs, assignment, None)
            }
            _ => {
                let t = Instant::now();
                let (src, info) = self
                    .conflict_runs_with(par)
                    .expect("generator families have conflict runs");
                generate_secs += t.elapsed().as_secs_f64();
                let t = Instant::now();
                let h = src.into_hspec(par);
                canonicalize_secs += t.elapsed().as_secs_f64();
                let t = Instant::now();
                let (n, runs, assignment) =
                    realize_runs(&h, self.layout, self.links, self.seed, par);
                generate_secs += t.elapsed().as_secs_f64();
                (n, runs, assignment, info)
            }
        };
        let t = Instant::now();
        let comm = CommGraph::from_edge_runs_with(n_machines, &runs.run_slices(), par)
            .expect("generated networks are valid by construction");
        canonicalize_secs += t.elapsed().as_secs_f64();
        let t = Instant::now();
        let graph = ClusterGraph::build_with(comm, assignment, par)
            .expect("clusters are connected by construction");
        let build_secs = t.elapsed().as_secs_f64();
        let timings = SetupTimings {
            generate_secs,
            canonicalize_secs,
            build_secs,
            total_secs: total_start.elapsed().as_secs_f64(),
            threads: par.threads(),
        };
        (graph, info, timings)
    }
}

/// Wall-clock sub-phase timings of one [`WorkloadSpec::build_timed`] call
/// — the instance-setup counterpart of
/// [`cgc_cluster::BuildTimings`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetupTimings {
    /// Raw edge production: family sampling kernels plus layout expansion
    /// (intra-cluster wiring and inter-cluster link placement).
    pub generate_secs: f64,
    /// Canonicalization: shard-local sort/dedup, the deterministic k-way
    /// merges, and CSR assembly (`HSpec` + `CommGraph`).
    pub canonicalize_secs: f64,
    /// The `ClusterGraph::build_with` phase (support trees, link table).
    pub build_secs: f64,
    /// End-to-end setup time.
    pub total_secs: f64,
    /// Configured executor width the setup ran under.
    pub threads: usize,
}

/// Formats a float so `FromStr` recovers it exactly (Rust's shortest
/// round-trip `Display` for `f64`).
pub(crate) fn fmt_f64(x: f64) -> String {
    format!("{x}")
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.family.name())?;
        match self.family {
            WorkloadFamily::Gnp { n, p } => write!(f, "n={n},p={}", fmt_f64(p))?,
            WorkloadFamily::PowerLaw { n, beta, avg } => {
                write!(f, "n={n},beta={},avg={}", fmt_f64(beta), fmt_f64(avg))?;
            }
            WorkloadFamily::Rgg { n, r } => write!(f, "n={n},r={}", fmt_f64(r))?,
            WorkloadFamily::Planted { c, k } => write!(f, "c={c},k={k}")?,
            WorkloadFamily::Mixture {
                c,
                k,
                anti,
                ext,
                bg,
                bgp,
            } => {
                write!(
                    f,
                    "c={c},k={k},anti={},ext={ext},bg={bg},bgp={}",
                    fmt_f64(anti),
                    fmt_f64(bgp)
                )?;
            }
            WorkloadFamily::Cabal { c, k, anti, ext } => {
                write!(f, "c={c},k={k},anti={anti},ext={ext}")?;
            }
            WorkloadFamily::Bottleneck { clusters, path } => {
                write!(f, "clusters={clusters},path={path}")?;
            }
            WorkloadFamily::Square { n, p } => write!(f, "n={n},p={}", fmt_f64(p))?,
            WorkloadFamily::Contraction { side, lo, hi } => {
                write!(f, "side={side},lo={lo},hi={hi}")?;
            }
        }
        write!(f, ",seed={}", self.seed)?;
        if self.layout != Layout::Singleton {
            write!(f, ",layout={}", self.layout)?;
        }
        if self.links != 1 {
            write!(f, ",links={}", self.links)?;
        }
        Ok(())
    }
}

/// Key/value bag for one spec string, consumed key by key so leftovers
/// can be rejected.
pub(crate) struct Fields<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    pub(crate) fn parse(body: &'a str) -> Result<Self, WorkloadParseError> {
        let mut pairs = Vec::new();
        for item in body.split(',') {
            let (k, v) = item
                .split_once('=')
                .ok_or_else(|| WorkloadParseError(format!("expected key=value, got `{item}`")))?;
            if pairs.iter().any(|&(pk, _)| pk == k) {
                return Err(WorkloadParseError(format!("duplicate key `{k}`")));
            }
            pairs.push((k, v));
        }
        Ok(Fields { pairs })
    }

    pub(crate) fn take<T: FromStr>(&mut self, key: &str) -> Result<T, WorkloadParseError> {
        let i = self
            .pairs
            .iter()
            .position(|&(k, _)| k == key)
            .ok_or_else(|| WorkloadParseError(format!("missing key `{key}`")))?;
        let (_, v) = self.pairs.remove(i);
        v.parse()
            .map_err(|_| WorkloadParseError(format!("bad value `{v}` for `{key}`")))
    }

    pub(crate) fn take_opt<T: FromStr>(
        &mut self,
        key: &str,
    ) -> Result<Option<T>, WorkloadParseError> {
        if self.pairs.iter().any(|&(k, _)| k == key) {
            self.take(key).map(Some)
        } else {
            Ok(None)
        }
    }

    pub(crate) fn finish(self) -> Result<(), WorkloadParseError> {
        match self.pairs.first() {
            None => Ok(()),
            Some((k, _)) => Err(WorkloadParseError(format!("unknown key `{k}`"))),
        }
    }
}

impl FromStr for WorkloadSpec {
    type Err = WorkloadParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, body) = s
            .split_once(':')
            .ok_or_else(|| WorkloadParseError(format!("expected `family:key=value,...`: `{s}`")))?;
        let mut fields = Fields::parse(body)?;
        let family = match name {
            "gnp" => WorkloadFamily::Gnp {
                n: fields.take("n")?,
                p: fields.take("p")?,
            },
            "powerlaw" => WorkloadFamily::PowerLaw {
                n: fields.take("n")?,
                beta: fields.take("beta")?,
                avg: fields.take("avg")?,
            },
            "rgg" => WorkloadFamily::Rgg {
                n: fields.take("n")?,
                r: fields.take("r")?,
            },
            "planted" => WorkloadFamily::Planted {
                c: fields.take("c")?,
                k: fields.take("k")?,
            },
            "mixture" => WorkloadFamily::Mixture {
                c: fields.take("c")?,
                k: fields.take("k")?,
                anti: fields.take("anti")?,
                ext: fields.take("ext")?,
                bg: fields.take("bg")?,
                bgp: fields.take("bgp")?,
            },
            "cabal" => WorkloadFamily::Cabal {
                c: fields.take("c")?,
                k: fields.take("k")?,
                anti: fields.take("anti")?,
                ext: fields.take("ext")?,
            },
            "bottleneck" => WorkloadFamily::Bottleneck {
                clusters: fields.take("clusters")?,
                path: fields.take("path")?,
            },
            "square" => WorkloadFamily::Square {
                n: fields.take("n")?,
                p: fields.take("p")?,
            },
            "contraction" => WorkloadFamily::Contraction {
                side: fields.take("side")?,
                lo: fields.take("lo")?,
                hi: fields.take("hi")?,
            },
            other => return Err(WorkloadParseError(format!("unknown family `{other}`"))),
        };
        let seed: u64 = fields.take("seed")?;
        let layout: Layout = fields
            .take_opt::<String>("layout")?
            .map(|s| s.parse().map_err(WorkloadParseError))
            .transpose()?
            .unwrap_or(Layout::Singleton);
        let links: usize = fields.take_opt("links")?.unwrap_or(1);
        fields.finish()?;
        if links == 0 {
            return Err(WorkloadParseError("links must be ≥ 1".into()));
        }
        if family.fixes_layout() && (layout != Layout::Singleton || links != 1) {
            return Err(WorkloadParseError(format!(
                "{} fixes its own layout; layout/links keys are not allowed",
                family.name()
            )));
        }
        if matches!(family, WorkloadFamily::Bottleneck { .. }) && seed != 0 {
            return Err(WorkloadParseError(
                "bottleneck is deterministic; nonzero seeds are not allowed".into(),
            ));
        }
        Ok(WorkloadSpec {
            family,
            layout,
            links,
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(spec: WorkloadSpec) {
        let s = spec.to_string();
        let back: WorkloadSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
        assert_eq!(back, spec, "{s}");
    }

    #[test]
    fn canonical_examples_roundtrip() {
        roundtrip(WorkloadSpec::gnp(300, 0.02, 14));
        roundtrip(WorkloadSpec::power_law(50_000, 2.5, 16.0, 7));
        roundtrip(WorkloadSpec::rgg(1000, 0.05, 3));
        roundtrip(WorkloadSpec::planted_cliques(4, 16, 9));
        roundtrip(WorkloadSpec::mixture(&MixtureConfig::default(), 2));
        roundtrip(WorkloadSpec::cabal(3, 26, 3, 5, 20));
        roundtrip(WorkloadSpec::bottleneck(10, 6));
        roundtrip(WorkloadSpec::square_gnp(200, 0.03, 12));
        roundtrip(WorkloadSpec::contraction(24, 4, 12, 3141));
        roundtrip(
            WorkloadSpec::gnp(90, 0.07, 1)
                .with_layout(Layout::Star(4))
                .with_links(2),
        );
        roundtrip(WorkloadSpec::cabal(3, 22, 2, 4, 8).with_layout(Layout::Path(6)));
        roundtrip(WorkloadSpec::gnp(40, 0.1, 6).with_layout(Layout::BinaryTree(15)));
    }

    #[test]
    fn issue_example_string_parses() {
        let spec: WorkloadSpec = "powerlaw:n=50000,beta=2.5,avg=16,seed=7".parse().unwrap();
        assert_eq!(
            spec.family,
            WorkloadFamily::PowerLaw {
                n: 50_000,
                beta: 2.5,
                avg: 16.0
            }
        );
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.layout, Layout::Singleton);
    }

    #[test]
    fn build_matches_hand_rolled_path() {
        let spec = WorkloadSpec::cabal(2, 12, 3, 4, 9).with_layout(Layout::Star(3));
        let g = spec.build();
        let (h, _) = crate::planted::cabal_spec(2, 12, 3, 4, 9);
        let legacy = crate::layouts::realize(&h, Layout::Star(3), 1, 9);
        assert_eq!(g.n_vertices(), legacy.n_vertices());
        assert_eq!(g.n_machines(), legacy.n_machines());
        for &(u, v) in &h.edges {
            assert!(g.has_edge(u, v));
            assert_eq!(g.link_multiplicity(u, v), legacy.link_multiplicity(u, v));
        }
    }

    #[test]
    fn bottleneck_builds_its_own_layout() {
        let spec = WorkloadSpec::bottleneck(5, 6);
        let g = spec.build();
        assert_eq!(g.n_vertices(), 5);
        assert_eq!(g.dilation(), 5);
        assert!(spec.conflict_spec().is_none());
        assert!("bottleneck:clusters=5,path=6,seed=0,layout=star3"
            .parse::<WorkloadSpec>()
            .is_err());
        assert!(
            "bottleneck:clusters=5,path=6,seed=7"
                .parse::<WorkloadSpec>()
                .is_err(),
            "nonzero seed would make the deterministic instance's address non-unique"
        );
    }

    #[test]
    fn contraction_builds_its_own_layout() {
        let spec = WorkloadSpec::contraction(12, 3, 8, 9);
        assert_eq!(spec.to_string(), "contraction:side=12,lo=3,hi=8,seed=9");
        let g = spec.build();
        assert_eq!(g.n_machines(), 144);
        assert!(g.n_vertices() >= 144 / 8);
        assert!(spec.conflict_spec().is_none());
        // Seeds reach the blob growth (unlike bottleneck, seeds are live).
        assert_ne!(spec.with_seed(10).build(), g);
        assert!("contraction:side=12,lo=3,hi=8,seed=9,layout=star3"
            .parse::<WorkloadSpec>()
            .is_err());
        assert!("contraction:side=12,lo=3,hi=8,seed=9,links=2"
            .parse::<WorkloadSpec>()
            .is_err());
    }

    #[test]
    fn setup_timings_cover_the_pipeline() {
        let (g, _, t) = WorkloadSpec::gnp(200, 0.05, 3)
            .with_layout(Layout::Star(3))
            .build_timed(&ParallelConfig::serial());
        assert_eq!(g.n_machines(), 600);
        assert_eq!(t.threads, 1);
        assert!(t.generate_secs >= 0.0 && t.canonicalize_secs >= 0.0 && t.build_secs >= 0.0);
        assert!(t.total_secs >= t.generate_secs + t.canonicalize_secs + t.build_secs - 1e-9);
    }

    #[test]
    fn parse_rejects_malformed_strings() {
        for bad in [
            "gnp",                                // no colon
            "gnp:n=10",                           // missing p, seed
            "gnp:n=10,p=0.5,seed=1,n=10",         // duplicate key
            "gnp:n=10,p=0.5,seed=1,bogus=3",      // unknown key
            "gnp:n=ten,p=0.5,seed=1",             // bad value
            "nope:n=10,seed=1",                   // unknown family
            "gnp:n=10,p=0.5,seed=1,layout=blob3", // unknown layout
            "gnp:n=10,p=0.5,seed=1,links=0",      // zero links
            "gnp:n=10,p=0.5",                     // missing seed
        ] {
            assert!(bad.parse::<WorkloadSpec>().is_err(), "{bad}");
        }
    }

    #[test]
    fn planted_info_travels_with_the_build() {
        let (g, info) =
            WorkloadSpec::planted_cliques(3, 8, 5).build_with_info(&ParallelConfig::serial());
        let info = info.expect("planted families carry ground truth");
        assert_eq!(info.cliques.len(), 3);
        assert_eq!(g.n_vertices(), 24);
    }
}
