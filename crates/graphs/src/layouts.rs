//! Conflict-graph specifications and cluster layouts.
//!
//! [`HSpec`] describes the graph to be colored; [`realize`] embeds it over
//! a communication network by expanding every node into a cluster of
//! machines with a chosen internal topology and wiring each `H`-edge with
//! one or more `G`-links between randomly chosen machines of the two
//! clusters. Multi-links per edge reproduce the Figure 1 phenomenon; long
//! path clusters reproduce the Figure 2/3 bottleneck shapes and stretch
//! the dilation `d` for experiment E11.

use crate::pipeline::ShardedEdgeSource;
use cgc_cluster::{ClusterGraph, ParallelConfig};
use cgc_net::{map_reduce_on, CommGraph, SeedStream, ShardPlan, WorkerPool};
use rand::RngExt;

/// A conflict-graph specification: the graph `H` to be colored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HSpec {
    /// Number of nodes.
    pub n: usize,
    /// Undirected edges (deduplicated on construction).
    pub edges: Vec<(usize, usize)>,
}

impl HSpec {
    /// Builds a spec, normalizing and deduplicating edges.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn new(n: usize, edges: Vec<(usize, usize)>) -> Self {
        let mut canon: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(u, v)| {
                assert!(u != v, "self-loop {u}");
                assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
                (u.min(v), u.max(v))
            })
            .collect();
        canon.sort_unstable();
        canon.dedup();
        HSpec { n, edges: canon }
    }

    /// Maximum degree of the spec.
    pub fn max_degree(&self) -> usize {
        let mut deg = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        deg.into_iter().max().unwrap_or(0)
    }
}

/// Internal topology of each cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// One machine per cluster (`H = G`, the CONGEST model).
    Singleton,
    /// A path of `m` machines (dilation ≈ m).
    Path(usize),
    /// A star: 1 center + `m − 1` leaves (dilation 1–2).
    Star(usize),
    /// A balanced binary tree with `m` machines.
    BinaryTree(usize),
}

impl Layout {
    /// Machines per cluster under this layout.
    pub fn cluster_size(&self) -> usize {
        match *self {
            Layout::Singleton => 1,
            Layout::Path(m) | Layout::Star(m) | Layout::BinaryTree(m) => m.max(1),
        }
    }
}

impl std::fmt::Display for Layout {
    /// Compact form used inside workload spec strings: `single`, `path8`,
    /// `star4`, `tree15`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Layout::Singleton => write!(f, "single"),
            Layout::Path(m) => write!(f, "path{m}"),
            Layout::Star(m) => write!(f, "star{m}"),
            Layout::BinaryTree(m) => write!(f, "tree{m}"),
        }
    }
}

impl std::str::FromStr for Layout {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "single" {
            return Ok(Layout::Singleton);
        }
        let (ctor, digits): (fn(usize) -> Layout, &str) = if let Some(d) = s.strip_prefix("path") {
            (Layout::Path, d)
        } else if let Some(d) = s.strip_prefix("star") {
            (Layout::Star, d)
        } else if let Some(d) = s.strip_prefix("tree") {
            (Layout::BinaryTree, d)
        } else {
            return Err(format!("unknown layout `{s}`"));
        };
        let m: usize = digits
            .parse()
            .map_err(|_| format!("bad cluster size in layout `{s}`"))?;
        if m < 2 {
            return Err(format!("layout `{s}` needs at least 2 machines"));
        }
        Ok(ctor(m))
    }
}

/// Realizes a spec over a communication network.
///
/// Every `H`-edge is wired with `links_per_edge` distinct `G`-links whose
/// endpoint machines are chosen uniformly inside each cluster (so parallel
/// links and awkward attachment points occur naturally).
///
/// # Panics
///
/// Panics if `links_per_edge == 0` or the spec is empty.
pub fn realize(h: &HSpec, layout: Layout, links_per_edge: usize, seed: u64) -> ClusterGraph {
    realize_with(h, layout, links_per_edge, seed, &ParallelConfig::serial())
}

/// [`realize`] with the whole pipeline — intra-cluster wiring generation,
/// machine-edge canonicalization ([`CommGraph::from_edge_runs_with`]) and
/// the `ClusterGraph` build ([`ClusterGraph::build_with`]) — sharded over
/// `par`'s threads; the realized instance is a pure function of
/// `(spec, layout, links, seed)` — never of the thread count.
pub fn realize_with(
    h: &HSpec,
    layout: Layout,
    links_per_edge: usize,
    seed: u64,
    par: &ParallelConfig,
) -> ClusterGraph {
    let (n_machines, runs, assignment) = realize_runs(h, layout, links_per_edge, seed, par);
    let comm = CommGraph::from_edge_runs_with(n_machines, &runs.run_slices(), par)
        .expect("layout produces valid graph");
    ClusterGraph::build_with(comm, assignment, par).expect("clusters are connected by construction")
}

/// The raw generation half of [`realize_with`]: the machine count, the
/// per-shard machine-edge runs (intra-cluster wiring sharded by cluster
/// rows, plus inter-cluster link runs sharded by `H`-edge ranges) and the
/// machine→cluster assignment — handed straight to
/// [`CommGraph::from_edge_runs_with`] without concatenating into one edge
/// `Vec`. The logical edge sequence is a pure function of
/// `(spec, layout, links, seed)`.
///
/// # Panics
///
/// Panics if `links_per_edge == 0` or the spec is empty.
pub fn realize_runs(
    h: &HSpec,
    layout: Layout,
    links_per_edge: usize,
    seed: u64,
    par: &ParallelConfig,
) -> (usize, ShardedEdgeSource, Vec<usize>) {
    assert!(links_per_edge > 0, "need at least one link per edge");
    assert!(h.n > 0, "empty spec");
    let m = layout.cluster_size();
    let n_machines = h.n * m;
    // Intra-cluster wiring: cluster c's machines are a pure function of
    // (c, layout), so the wiring shards by cluster rows.
    let mut runs = ShardedEdgeSource::from_rows(h.n, par, move |c, out| {
        let base = c * m;
        match layout {
            Layout::Singleton => {}
            Layout::Path(_) => {
                for j in 0..(m - 1) {
                    out.push((base + j, base + j + 1));
                }
            }
            Layout::Star(_) => {
                for j in 1..m {
                    out.push((base, base + j));
                }
            }
            Layout::BinaryTree(_) => {
                for j in 1..m {
                    out.push((base + (j - 1) / 2, base + j));
                }
            }
        }
    });
    // Inter-cluster links: every H-edge places its links_per_edge links
    // from its own seed substream, keyed by the edge's index in canonical
    // order — this was the last single-RNG serial sweep of the realize
    // pipeline, and per-edge streams let it shard by contiguous H-edge
    // ranges. Runs stay in ascending edge order, so the logical link
    // sequence is unchanged at every thread count.
    let link_seeds = SeedStream::new(seed).child(0xEDCE);
    let plan = ShardPlan::even(h.edges.len(), par.threads());
    let pool = WorkerPool::global(par.threads());
    let edges = &h.edges;
    let link_runs = map_reduce_on(
        &plan,
        pool.as_deref(),
        |range| {
            let mut links: Vec<(usize, usize)> = Vec::with_capacity(range.len() * links_per_edge);
            for e in range {
                let (u, v) = edges[e];
                let mut rng = link_seeds.rng_for(e as u64, 0);
                for _ in 0..links_per_edge {
                    let mu = u * m + rng.random_range(0..m);
                    let mv = v * m + rng.random_range(0..m);
                    links.push((mu, mv));
                }
            }
            vec![links]
        },
        |acc: &mut Vec<Vec<(usize, usize)>>, part| acc.extend(part),
    );
    for run in link_runs {
        runs.push_run(run);
    }
    let assignment: Vec<usize> = (0..n_machines).map(|i| i / m).collect();
    (n_machines, runs, assignment)
}

/// The communication network and machine→cluster assignment [`realize`]
/// feeds to [`ClusterGraph::build`] — exposed so benches can time and
/// differential-test the build itself on real realized instances.
pub fn realize_network(
    h: &HSpec,
    layout: Layout,
    links_per_edge: usize,
    seed: u64,
) -> (CommGraph, Vec<usize>) {
    let par = ParallelConfig::serial();
    let (n_machines, runs, assignment) = realize_runs(h, layout, links_per_edge, seed, &par);
    let comm = CommGraph::from_edge_runs_with(n_machines, &runs.run_slices(), &par)
        .expect("layout produces valid graph");
    (comm, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> HSpec {
        HSpec::new(3, vec![(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn spec_normalizes_edges() {
        let h = HSpec::new(3, vec![(1, 0), (0, 1), (2, 1)]);
        assert_eq!(h.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(h.max_degree(), 2);
    }

    #[test]
    fn singleton_layout_reproduces_spec() {
        let g = realize(&triangle(), Layout::Singleton, 1, 1);
        assert_eq!(g.n_vertices(), 3);
        assert_eq!(g.n_machines(), 3);
        assert_eq!(g.dilation(), 1);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(0, 2));
    }

    #[test]
    fn path_layout_stretches_dilation() {
        let g = realize(&triangle(), Layout::Path(8), 1, 2);
        assert_eq!(g.n_vertices(), 3);
        assert_eq!(g.n_machines(), 24);
        assert!(g.dilation() >= 4, "dilation {}", g.dilation());
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn star_layout_keeps_dilation_small() {
        let g = realize(&triangle(), Layout::Star(9), 1, 3);
        assert_eq!(g.dilation(), 1);
        assert_eq!(g.n_machines(), 27);
    }

    #[test]
    fn binary_tree_layout_is_logarithmic() {
        let g = realize(&triangle(), Layout::BinaryTree(15), 1, 4);
        assert!(g.dilation() <= 4, "dilation {}", g.dilation());
    }

    #[test]
    fn multi_links_realized() {
        let g = realize(&triangle(), Layout::Star(6), 4, 5);
        // Multiplicity can collapse when the same machine pair is drawn
        // twice, but with 36 machine pairs that is unlikely for all 4.
        assert!(g.link_multiplicity(0, 1) >= 2);
        assert_eq!(g.degree(0), 2, "H-degree unaffected by multiplicity");
    }

    #[test]
    fn edge_preservation_over_all_layouts() {
        for layout in [
            Layout::Singleton,
            Layout::Path(4),
            Layout::Star(4),
            Layout::BinaryTree(4),
        ] {
            let g = realize(&triangle(), layout, 2, 9);
            for &(u, v) in &triangle().edges {
                assert!(g.has_edge(u, v), "missing edge ({u},{v}) under {layout:?}");
            }
            assert_eq!(g.n_h_edges(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        HSpec::new(2, vec![(1, 1)]);
    }
}
