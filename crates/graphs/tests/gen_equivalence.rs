//! Differential suite for the sharded generation-to-graph edge pipeline.
//!
//! Pins the PR's two contracts:
//!
//! 1. **Skip walk ≡ sweep.** The `O(m)` skip-walk G(n, p) sampler draws
//!    from per-row RNG substreams, so its instances differ from the old
//!    `O(n²)` single-stream sweep for a given seed — but the *process* it
//!    samples must be the same Bernoulli(`p`) edge process. A test-local
//!    copy of the removed sweep provides the reference distribution at
//!    small `n`, and the degenerate probabilities (`p ∈ {0, 1}`) must
//!    match the sweep exactly, edge for edge.
//! 2. **Thread-count independence.** Every workload family — through the
//!    full `WorkloadSpec` pipeline (generate → canonicalize →
//!    `CommGraph::from_edge_runs_with` → `ClusterGraph::build_with`) —
//!    produces an identical `HSpec` and an identical built `ClusterGraph`
//!    (full struct equality via the `PartialEq` derives) at threads
//!    {1, 2, 4, 8}.

use cgc_cluster::ParallelConfig;
use cgc_graphs::{gnp_spec, gnp_spec_with, HSpec, WorkloadSpec};
use cgc_net::SeedStream;
use rand::RngExt;

/// The pre-skip-walk sampler, verbatim: one RNG stream, one coin per
/// vertex pair in row-major order. Kept here as the distributional
/// reference for the skip walk.
fn gnp_sweep_reference(n: usize, p: f64, seed: u64) -> HSpec {
    let mut rng = SeedStream::new(seed).rng_for(0x67_6E_70, 0);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < p {
                edges.push((u, v));
            }
        }
    }
    HSpec::new(n, edges)
}

fn degrees(h: &HSpec) -> Vec<usize> {
    let mut deg = vec![0usize; h.n];
    for &(u, v) in &h.edges {
        deg[u] += 1;
        deg[v] += 1;
    }
    deg
}

#[test]
fn skip_walk_matches_the_sweep_distribution() {
    // Matched seeds, many instances: the mean edge count and mean degree
    // of the two samplers must agree within a few standard errors. With
    // n = 80, p = 0.15 each instance has mean m = 474, sd ≈ 20; over 60
    // seeds the two means are each ±2.6 at one sigma, so a ±12 gate is
    // ~4.6σ for the difference — loose enough to never flake, tight
    // enough to catch any systematic bias in the skip sampling.
    let (n, p, seeds) = (80usize, 0.15f64, 60u64);
    let mut sweep_m = 0.0f64;
    let mut walk_m = 0.0f64;
    for seed in 0..seeds {
        sweep_m += gnp_sweep_reference(n, p, seed).edges.len() as f64;
        walk_m += gnp_spec(n, p, seed).edges.len() as f64;
    }
    sweep_m /= seeds as f64;
    walk_m /= seeds as f64;
    let expect = p * (n * (n - 1) / 2) as f64;
    assert!(
        (sweep_m - walk_m).abs() < 12.0,
        "sweep mean {sweep_m:.1} vs walk mean {walk_m:.1}"
    );
    assert!(
        (walk_m - expect).abs() < 12.0,
        "walk mean {walk_m:.1} vs analytic {expect:.1}"
    );
    // Per-vertex: the degree distribution is exchangeable under both
    // samplers — compare min/max spread on one instance loosely.
    let walk_deg = degrees(&gnp_spec(n, p, 1));
    let mean = walk_deg.iter().sum::<usize>() as f64 / n as f64;
    assert!(
        (mean - p * (n - 1) as f64).abs() < 4.0,
        "mean degree {mean}"
    );
}

#[test]
fn skip_walk_equals_the_sweep_at_degenerate_probabilities() {
    for n in [1usize, 2, 17, 40] {
        for seed in [0u64, 7] {
            assert_eq!(gnp_spec(n, 0.0, seed), gnp_sweep_reference(n, 0.0, seed));
            assert_eq!(gnp_spec(n, 1.0, seed), gnp_sweep_reference(n, 1.0, seed));
        }
    }
}

#[test]
fn skip_walk_is_seed_deterministic_and_thread_independent() {
    let reference = gnp_spec(300, 0.06, 5);
    assert_eq!(gnp_spec(300, 0.06, 5), reference);
    assert_ne!(gnp_spec(300, 0.06, 6), reference);
    for threads in [2, 4, 8] {
        assert_eq!(
            gnp_spec_with(300, 0.06, 5, &ParallelConfig::with_threads(threads)),
            reference,
            "threads={threads}"
        );
    }
}

/// One spec per family (layout variation included where layouts apply) —
/// the sweep matrix of the pipeline equivalence tests.
fn family_matrix() -> Vec<WorkloadSpec> {
    vec![
        "gnp:n=250,p=0.05,seed=3".parse().unwrap(),
        "gnp:n=120,p=0.08,seed=9,layout=star3,links=2"
            .parse()
            .unwrap(),
        "powerlaw:n=400,beta=2.4,avg=7,seed=7".parse().unwrap(),
        "powerlaw:n=200,beta=2.2,avg=6,seed=2,layout=path4"
            .parse()
            .unwrap(),
        "rgg:n=350,r=0.08,seed=11".parse().unwrap(),
        "rgg:n=150,r=0.12,seed=4,layout=tree7".parse().unwrap(),
        "planted:c=4,k=12,seed=6".parse().unwrap(),
        "mixture:c=3,k=14,anti=0.1,ext=2,bg=30,bgp=0.1,seed=8"
            .parse()
            .unwrap(),
        "cabal:c=3,k=16,anti=3,ext=5,seed=12,layout=star4"
            .parse()
            .unwrap(),
        "square:n=80,p=0.06,seed=5".parse().unwrap(),
        "bottleneck:clusters=12,path=5,seed=0".parse().unwrap(),
        "contraction:side=14,lo=3,hi=9,seed=10".parse().unwrap(),
    ]
}

#[test]
fn every_family_generates_an_identical_hspec_at_any_thread_count() {
    for spec in family_matrix() {
        let reference = spec.conflict_spec_with(&ParallelConfig::serial());
        for threads in [2, 4, 8] {
            let got = spec.conflict_spec_with(&ParallelConfig::with_threads(threads));
            assert_eq!(got, reference, "{spec} threads={threads}");
        }
        if let Some((h, _)) = reference {
            // Canonical invariant: sorted, unique, normalized.
            for w in h.edges.windows(2) {
                assert!(w[0] < w[1], "{spec}: edges not sorted/unique");
            }
            assert!(h.edges.iter().all(|&(u, v)| u < v), "{spec}: orientation");
        }
    }
}

#[test]
fn every_family_builds_an_identical_cluster_graph_at_any_thread_count() {
    for spec in family_matrix() {
        let (reference, ref_info) = spec.build_with_info(&ParallelConfig::serial());
        for threads in [2, 4, 8] {
            let (got, info) = spec.build_with_info(&ParallelConfig::with_threads(threads));
            assert_eq!(got, reference, "{spec} threads={threads}");
            assert_eq!(info, ref_info, "{spec} threads={threads}: planted info");
        }
    }
}

#[test]
fn build_timed_reproduces_build_with_info() {
    for spec in [
        "gnp:n=200,p=0.05,seed=3",
        "contraction:side=10,lo=2,hi=6,seed=4",
    ] {
        let spec: WorkloadSpec = spec.parse().unwrap();
        let (a, ia) = spec.build_with_info(&ParallelConfig::serial());
        let (b, ib, t) = spec.build_timed(&ParallelConfig::with_threads(4));
        assert_eq!(a, b, "{spec}");
        assert_eq!(ia, ib, "{spec}");
        assert_eq!(t.threads, 4);
        assert!(t.total_secs >= t.generate_secs + t.canonicalize_secs + t.build_secs - 1e-9);
    }
}
