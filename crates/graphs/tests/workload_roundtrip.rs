//! Property suite: `WorkloadSpec::from_str(spec.to_string()) == spec`
//! across every family, layout and link multiplicity — the contract that
//! makes the spec string printed in an experiment table a complete,
//! executable address for the instance.

use cgc_graphs::{Layout, WorkloadFamily, WorkloadSpec};
use proptest::prelude::*;

fn roundtrip(spec: WorkloadSpec) -> Result<(), TestCaseError> {
    let s = spec.to_string();
    let back: WorkloadSpec = match s.parse() {
        Ok(b) => b,
        Err(e) => return Err(TestCaseError::fail(format!("`{s}` failed to parse: {e}"))),
    };
    prop_assert!(
        back == spec,
        "`{}` reparsed as {:?}, expected {:?}",
        s,
        back,
        spec
    );
    Ok(())
}

/// Decodes a generated `(kind, size)` pair into a layout (bottleneck
/// excluded — it fixes its own).
fn layout_of(kind: usize, m: usize) -> Layout {
    match kind % 4 {
        0 => Layout::Singleton,
        1 => Layout::Path(m),
        2 => Layout::Star(m),
        _ => Layout::BinaryTree(m),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn gnp_roundtrips(
        n in 1usize..1_000_000,
        p in 0.0f64..1.0,
        seed in any::<u64>(),
        lk in 0usize..4,
        m in 2usize..40,
        links in 1usize..9,
    ) {
        let spec = WorkloadSpec::gnp(n, p, seed)
            .with_layout(layout_of(lk, m))
            .with_links(links);
        roundtrip(spec)?;
    }

    #[test]
    fn powerlaw_roundtrips(
        n in 1usize..10_000_000,
        beta in 2.000001f64..4.0,
        avg in 0.5f64..64.0,
        seed in any::<u64>(),
    ) {
        roundtrip(WorkloadSpec::power_law(n, beta, avg, seed))?;
    }

    #[test]
    fn rgg_roundtrips(
        n in 1usize..1_000_000,
        r in 0.0001f64..1.0,
        seed in any::<u64>(),
        lk in 0usize..4,
        m in 2usize..12,
    ) {
        roundtrip(WorkloadSpec::rgg(n, r, seed).with_layout(layout_of(lk, m)))?;
    }

    #[test]
    fn planted_roundtrips(
        c in 1usize..64,
        k in 1usize..256,
        seed in any::<u64>(),
        links in 1usize..5,
    ) {
        roundtrip(WorkloadSpec::planted_cliques(c, k, seed).with_links(links))?;
    }

    #[test]
    fn mixture_roundtrips(
        c in 1usize..16,
        k in 2usize..64,
        anti in 0.0f64..1.0,
        ext in 0usize..8,
        bg in 0usize..512,
        bgp in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let spec = WorkloadSpec::new(
            WorkloadFamily::Mixture { c, k, anti, ext, bg, bgp },
            seed,
        );
        roundtrip(spec)?;
    }

    #[test]
    fn cabal_roundtrips(
        c in 1usize..16,
        k in 4usize..64,
        anti in 0usize..8,
        ext in 0usize..32,
        seed in any::<u64>(),
        lk in 0usize..4,
        m in 2usize..10,
    ) {
        let spec = WorkloadSpec::cabal(c, k, anti, ext, seed).with_layout(layout_of(lk, m));
        roundtrip(spec)?;
    }

    #[test]
    fn bottleneck_roundtrips(clusters in 1usize..128, path in 2usize..64) {
        roundtrip(WorkloadSpec::bottleneck(clusters, path))?;
    }

    #[test]
    fn square_roundtrips(n in 1usize..100_000, p in 0.0f64..1.0, seed in any::<u64>()) {
        roundtrip(WorkloadSpec::square_gnp(n, p, seed))?;
    }

    #[test]
    fn contraction_roundtrips(
        side in 1usize..256,
        lo in 1usize..16,
        extra in 0usize..16,
        seed in any::<u64>(),
    ) {
        roundtrip(WorkloadSpec::contraction(side, lo, lo + extra, seed))?;
    }

    #[test]
    fn layout_strings_roundtrip(lk in 0usize..4, m in 2usize..1000) {
        let layout = layout_of(lk, m);
        let parsed: Layout = layout.to_string().parse().map_err(TestCaseError::fail)?;
        prop_assert_eq!(parsed, layout);
    }
}

#[test]
fn small_specs_build_the_instance_their_string_describes() {
    // Round-trip through the *string* and build both sides: identical
    // topology (spot-checked cheaply — full bit-equality of realized
    // graphs is the build_matches_hand_rolled_path unit test's job).
    for raw in [
        "gnp:n=60,p=0.1,seed=3",
        "rgg:n=80,r=0.2,seed=5,layout=path3",
        "planted:c=2,k=6,seed=1,links=2",
        "cabal:c=2,k=8,anti=2,ext=1,seed=4,layout=star3",
        "mixture:c=2,k=8,anti=0.1,ext=1,bg=10,bgp=0.2,seed=9",
        "bottleneck:clusters=4,path=3,seed=0",
        "square:n=40,p=0.05,seed=2",
        "powerlaw:n=200,beta=2.5,avg=4,seed=6",
        "contraction:side=12,lo=3,hi=9,seed=11",
    ] {
        let spec: WorkloadSpec = raw.parse().unwrap_or_else(|e| panic!("{raw}: {e}"));
        let a = spec.build();
        let b: WorkloadSpec = spec.to_string().parse().unwrap();
        let c = b.build();
        assert_eq!(a.n_vertices(), c.n_vertices(), "{raw}");
        assert_eq!(a.n_machines(), c.n_machines(), "{raw}");
        assert_eq!(a.n_h_edges(), c.n_h_edges(), "{raw}");
        assert_eq!(a.dilation(), c.dilation(), "{raw}");
    }
}
