//! Sequential greedy (Δ+1)-coloring — the centralized yardstick.

use cgc_cluster::{ClusterNet, VertexId};
use cgc_core::Coloring;

/// Colors vertices in id order with the smallest free color. Charges one
/// aggregation round per vertex (the honest distributed cost of a
/// sequential algorithm).
pub fn greedy_coloring(net: &mut ClusterNet<'_>) -> Coloring {
    let n = net.g.n_vertices();
    let q = net.g.max_degree() + 1;
    let mut coloring = Coloring::new(n, q);
    net.set_phase("greedy");
    for v in 0..n as VertexId {
        net.charge_full_rounds(1, net.color_bits());
        let pal = coloring.palette_oracle(net.g, v);
        coloring.set(v, *pal.first().expect("Δ+1 colors always suffice"));
    }
    coloring
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_cluster::ClusterGraph;
    use cgc_net::CommGraph;

    #[test]
    fn greedy_is_total_and_proper() {
        let g = ClusterGraph::singletons(CommGraph::complete(12));
        let mut net = ClusterNet::with_log_budget(&g, 32);
        let c = greedy_coloring(&mut net);
        assert!(c.is_total());
        assert!(c.is_proper(&g));
        assert_eq!(
            net.meter.h_rounds() as usize,
            3 * 12,
            "one round per vertex"
        );
    }

    #[test]
    fn greedy_uses_delta_plus_one_on_cliques() {
        let g = ClusterGraph::singletons(CommGraph::complete(7));
        let mut net = ClusterNet::with_log_budget(&g, 32);
        let c = greedy_coloring(&mut net);
        let s = cgc_core::coloring_stats(&g, &c);
        assert_eq!(s.colors_used, 7);
    }
}
