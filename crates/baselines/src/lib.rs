//! Baseline coloring algorithms for the comparison experiments (E1, E14).
//!
//! * [`greedy`] — sequential greedy (the centralized yardstick; one
//!   charged round per vertex);
//! * [`luby`] — Luby/Johansson-style synchronous random palette trials,
//!   the classic `O(log n)`-round distributed algorithm [Joh99, Lub86];
//! * [`congest_naive`] — the cost model of naively simulating a CONGEST
//!   coloring step on a cluster graph *without* the paper's machinery:
//!   every vertex ships its neighbors' colors through its support tree,
//!   paying `Θ(Δ log Δ / B)` pipelined rounds per step (§1.1's
//!   obstruction made concrete).

pub mod congest_naive;
pub mod greedy;
pub mod luby;

pub use congest_naive::naive_simulation_cost;
pub use greedy::greedy_coloring;
pub use luby::{johansson_stats, luby_coloring, JohanssonStats};
