//! Luby/Johansson random palette trials — the `O(log n)` classic.
//!
//! Every uncolored vertex tries a uniform color from its current palette
//! each round; conflicts resolve by id. Θ(log n) rounds w.h.p. \[Joh99\].
//! This is E1's baseline: its round count *grows* with `n` while the
//! paper's algorithm stays (nearly) flat in the high-degree regime.

use cgc_cluster::ClusterNet;
use cgc_core::{trycolor::try_color_round, Coloring};
use cgc_net::SeedStream;
use rand::RngExt;

/// Round-count statistics of a Johansson run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JohanssonStats {
    /// Rounds until the coloring became total.
    pub rounds: usize,
    /// Whether the run hit the round cap before finishing.
    pub capped: bool,
}

/// Runs Johansson's algorithm to completion (or `max_rounds`).
pub fn luby_coloring(
    net: &mut ClusterNet<'_>,
    seeds: &SeedStream,
    max_rounds: usize,
) -> (Coloring, JohanssonStats) {
    let n = net.g.n_vertices();
    let q = net.g.max_degree() + 1;
    let mut coloring = Coloring::new(n, q);
    net.set_phase("johansson");
    let mut rounds = 0usize;
    while !coloring.is_total() && rounds < max_rounds {
        rounds += 1;
        // Palette maintenance bitmap + the trial round.
        net.charge_full_rounds(1, q as u64);
        let palettes: Vec<Vec<usize>> = (0..n)
            .map(|v| {
                if coloring.is_colored(v) {
                    Vec::new()
                } else {
                    coloring.palette_oracle(net.g, v)
                }
            })
            .collect();
        let eligible: Vec<bool> = (0..n).map(|v| !coloring.is_colored(v)).collect();
        try_color_round(
            net,
            &mut coloring,
            seeds,
            rounds as u64,
            &eligible,
            1.0,
            |v, rng| {
                let pal = &palettes[v];
                if pal.is_empty() {
                    None
                } else {
                    Some(pal[rng.random_range(0..pal.len())])
                }
            },
        );
    }
    let capped = !coloring.is_total();
    (coloring, JohanssonStats { rounds, capped })
}

/// Convenience wrapper returning only the stats (E1 series).
pub fn johansson_stats(
    net: &mut ClusterNet<'_>,
    seeds: &SeedStream,
    max_rounds: usize,
) -> JohanssonStats {
    luby_coloring(net, seeds, max_rounds).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_cluster::ClusterGraph;
    use cgc_graphs::{gnp_spec, realize, Layout};
    use cgc_net::CommGraph;

    #[test]
    fn finishes_cliques() {
        let g = ClusterGraph::singletons(CommGraph::complete(20));
        let mut net = ClusterNet::with_log_budget(&g, 32);
        let seeds = SeedStream::new(1);
        let (c, stats) = luby_coloring(&mut net, &seeds, 500);
        assert!(!stats.capped);
        assert!(c.is_total());
        assert!(c.is_proper(&g));
    }

    #[test]
    fn rounds_grow_mildly_with_n() {
        let run = |n: usize| {
            let spec = gnp_spec(n, 8.0 / n as f64, 3);
            let g = realize(&spec, Layout::Singleton, 1, 3);
            let mut net = ClusterNet::with_log_budget(&g, 32);
            let seeds = SeedStream::new(4);
            johansson_stats(&mut net, &seeds, 10_000).rounds
        };
        let small = run(64);
        let large = run(1024);
        // Logarithmic-ish growth: larger instance takes more rounds but
        // not absurdly more.
        assert!(large >= small, "small {small}, large {large}");
        assert!(large <= 20 * small.max(4), "large {large} vs small {small}");
    }

    #[test]
    fn respects_round_cap() {
        let g = ClusterGraph::singletons(CommGraph::complete(30));
        let mut net = ClusterNet::with_log_budget(&g, 32);
        let seeds = SeedStream::new(5);
        let (_, stats) = luby_coloring(&mut net, &seeds, 1);
        assert_eq!(stats.rounds, 1);
        assert!(stats.capped);
    }
}
