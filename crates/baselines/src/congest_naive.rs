//! The naive-simulation cost model (§1.1).
//!
//! A CONGEST coloring algorithm assumes a vertex can *receive the colors
//! of all its neighbors* each round. On a cluster graph, that payload is
//! `deg(v) · O(log Δ)` bits squeezed through the support tree — the
//! Figure 2 bottleneck. This module does not color anything new: it
//! quantifies the per-round overhead factor such a simulation pays, which
//! E14 reports next to the real algorithm.

use cgc_cluster::{ClusterGraph, ClusterNet};

/// The pipelined cost (in cluster rounds) of ONE naive simulation round:
/// every vertex collects all neighbor colors through its support tree.
pub fn naive_round_cost(net: &mut ClusterNet<'_>) -> u64 {
    let before = net.meter.h_rounds();
    let n = net.g.n_vertices();
    let msgs = vec![0u8; n];
    // neighbor_collect charges the honest deg·bits converge-cast.
    let _ = net.neighbor_collect(net.color_bits(), &msgs);
    net.meter.h_rounds() - before
}

/// Total cost of naively simulating `steps` CONGEST rounds, plus the
/// overhead factor relative to an `O(log n)`-bit aggregation round.
pub fn naive_simulation_cost(g: &ClusterGraph, budget_beta: u64, steps: u64) -> (u64, f64) {
    let mut net = ClusterNet::with_log_budget(g, budget_beta);
    net.set_phase("naive-congest");
    let per_round = naive_round_cost(&mut net);
    let baseline = 3u64; // broadcast + link + converge at O(log n) bits
    (per_round * steps, per_round as f64 / baseline as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_graphs::{gnp_spec, realize, Layout};

    #[test]
    fn naive_cost_grows_with_degree() {
        // Real clusters (star of 3 machines): the collected payload must
        // cross support-tree edges, where pipelining bites. In CONGEST
        // (singleton clusters) collection is genuinely one round — that
        // contrast is the point of the model (§1.1).
        let sparse = realize(&gnp_spec(60, 0.05, 1), Layout::Star(3), 1, 1);
        let dense = realize(&gnp_spec(60, 0.5, 1), Layout::Star(3), 1, 1);
        let (_, f_sparse) = naive_simulation_cost(&sparse, 4, 1);
        let (_, f_dense) = naive_simulation_cost(&dense, 4, 1);
        assert!(
            f_dense > f_sparse,
            "dense {f_dense} should exceed sparse {f_sparse}"
        );
    }

    #[test]
    fn congest_singletons_collect_in_one_round() {
        let g = realize(&gnp_spec(40, 0.4, 5), Layout::Singleton, 1, 5);
        let (cost, factor) = naive_simulation_cost(&g, 4, 1);
        assert_eq!(cost, 3, "broadcast + link + free converge");
        assert!(factor <= 1.0);
    }

    #[test]
    fn steps_scale_linearly() {
        let g = realize(&gnp_spec(40, 0.3, 2), Layout::Star(3), 1, 2);
        let (one, _) = naive_simulation_cost(&g, 4, 1);
        let (ten, _) = naive_simulation_cost(&g, 4, 10);
        assert_eq!(ten, 10 * one);
    }
}
