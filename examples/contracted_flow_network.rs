//! Coloring after edge contraction — the flow-algorithm scenario (§1.1).
//!
//! Maximum-flow and network-decomposition algorithms repeatedly *contract*
//! connected machine sets; the contracted graph is exactly a cluster graph
//! over the original network, with clusters of wildly uneven shapes and
//! many parallel links between the same pair of clusters. This example
//! builds such an instance directly from a communication network plus a
//! contraction map, and colors it.
//!
//! A contraction map has no generator family, so there is no
//! `WorkloadSpec` for this instance; the example uses
//! [`color_cluster_graph`], the documented compatibility entry for
//! custom-built [`ClusterGraph`]s (generator-backed runs go through
//! [`Session`] — see `quickstart.rs`).
//!
//! ```sh
//! cargo run --release --example contracted_flow_network
//! ```

use cluster_coloring::prelude::*;
use rand::RngExt;

fn main() {
    // A 24x24 grid network — the canonical flow substrate.
    let side = 24usize;
    let n = side * side;
    let mut edges = Vec::new();
    for r in 0..side {
        for c in 0..side {
            let v = r * side + c;
            if c + 1 < side {
                edges.push((v, v + 1));
            }
            if r + 1 < side {
                edges.push((v, v + side));
            }
        }
    }
    let comm = CommGraph::from_edges(n, &edges).expect("grid is valid");

    // Contract random connected blobs: BFS-grow regions of 4–12 machines,
    // exactly what a blocking-flow phase produces.
    let seeds = SeedStream::new(3141);
    let mut rng = seeds.rng_for(0, 0);
    let mut assignment = vec![usize::MAX; n];
    let mut next_cluster = 0usize;
    for start in 0..n {
        if assignment[start] != usize::MAX {
            continue;
        }
        let target = rng.random_range(4..=12usize);
        let mut frontier = vec![start];
        let mut grabbed = 0usize;
        while let Some(v) = frontier.pop() {
            if assignment[v] != usize::MAX || grabbed == target {
                continue;
            }
            assignment[v] = next_cluster;
            grabbed += 1;
            for &w in comm.neighbors(v) {
                if assignment[w] == usize::MAX {
                    frontier.push(w);
                }
            }
        }
        next_cluster += 1;
    }

    let h = ClusterGraph::build(comm, assignment).expect("blobs are connected");
    println!(
        "contracted graph: {} clusters over {} machines, Δ = {}, dilation {}",
        h.n_vertices(),
        h.n_machines(),
        h.max_degree(),
        h.dilation()
    );
    let max_mult = h
        .h_edges()
        .map(|(u, v)| h.link_multiplicity(u, v))
        .max()
        .unwrap_or(0);
    println!("max parallel links per contracted edge: {max_mult} (Figure 1)");

    let mut net = ClusterNet::with_log_budget(&h, 32);
    let run = color_cluster_graph(&mut net, &Params::laptop(h.n_vertices()), 17);
    assert!(run.coloring.is_total() && run.coloring.is_proper(&h));
    let stats = coloring_stats(&h, &run.coloring);
    println!(
        "colored {} clusters with {} colors in {} H-rounds / {} G-rounds",
        stats.n_vertices, stats.colors_used, run.report.h_rounds, run.report.g_rounds
    );
    println!(
        "bandwidth: max message {} bits within budget {} ({} oversized)",
        run.report.max_msg_bits, run.report.budget_bits, run.report.oversized_msgs
    );
}
