//! Coloring after edge contraction — the flow-algorithm scenario (§1.1).
//!
//! Maximum-flow and network-decomposition algorithms repeatedly *contract*
//! connected machine sets; the contracted graph is exactly a cluster graph
//! over the original network, with clusters of wildly uneven shapes and
//! many parallel links between the same pair of clusters. The
//! `contraction` workload family builds such an instance — a grid network
//! contracted along seeded blobs — so the scenario is string-addressable
//! like every other workload: the spec below reproduces this exact
//! instance anywhere.
//!
//! Once colored, the coloring itself becomes a *scheduler*: its color
//! classes are pairwise non-adjacent in the contracted graph, so the
//! per-cluster state updates a flow phase runs between contractions
//! (label relaxations below) execute class-by-class as conflict-free
//! parallel waves — no locks, no atomics, bit-identical at any thread
//! count.
//!
//! ```sh
//! cargo run --release --example contracted_flow_network
//! ```

use cluster_coloring::cluster::par::SendPtr;
use cluster_coloring::prelude::*;

fn main() {
    // A 24x24 grid network — the canonical flow substrate — contracted
    // along random connected blobs of 4–12 machines, exactly what a
    // blocking-flow phase produces.
    let mut session = SessionBuilder::parse("contraction:side=24,lo=4,hi=12,seed=3141")
        .expect("valid workload spec")
        .build();
    let h = session.graph();
    println!(
        "contracted graph: {} clusters over {} machines, Δ = {}, dilation {}",
        h.n_vertices(),
        h.n_machines(),
        h.max_degree(),
        h.dilation()
    );
    let max_mult = h
        .h_edges()
        .map(|(u, v)| h.link_multiplicity(u, v))
        .max()
        .unwrap_or(0);
    println!("max parallel links per contracted edge: {max_mult} (Figure 1)");

    let out = session.run(17);
    let h = session.graph();
    assert!(out.run.coloring.is_total() && out.run.coloring.is_proper(h));
    let stats = coloring_stats(h, &out.run.coloring);
    println!(
        "colored {} clusters with {} colors in {} H-rounds / {} G-rounds",
        stats.n_vertices, stats.colors_used, out.run.report.h_rounds, out.run.report.g_rounds
    );
    println!(
        "bandwidth: max message {} bits within budget {} ({} oversized)",
        out.run.report.max_msg_bits, out.run.report.budget_bits, out.run.report.oversized_msgs
    );
    println!(
        "setup: generate {:.3}s, canonicalize {:.3}s, build {:.3}s (spec `{}`)",
        out.generate_secs, out.canonicalize_secs, out.graph_build_secs, out.spec_string
    );

    // --- Coloring as a scheduler -----------------------------------
    // A flow phase now needs per-cluster label relaxations over the
    // contracted graph. Materialize the coloring we just computed into
    // an execution schedule: class = wave, and the build *asserts* that
    // no two clusters in a wave are adjacent.
    let par = ParallelConfig::from_env();
    let schedule = ColorSchedule::build(h, &out.run.coloring, &par);
    assert!(schedule.verify_disjoint(h));
    println!(
        "schedule: {} classes ({} non-empty), largest wave {} of {} clusters",
        schedule.n_classes(),
        schedule.n_nonempty_classes(),
        schedule.largest_class(),
        h.n_vertices()
    );

    // At least 2 so the pooled path runs even on a single-core box.
    let threads = available_threads().max(2);
    let (serial_labels, serial_sweeps) = relax_to_fixpoint(h, &schedule, 1);
    let (par_labels, par_sweeps) = relax_to_fixpoint(h, &schedule, threads);
    assert_eq!(
        (serial_labels, serial_sweeps),
        (par_labels.clone(), par_sweeps),
        "wave execution is bit-identical at any thread count"
    );
    let eccentricity = par_labels.iter().filter(|&&l| l != u32::MAX).max().unwrap();
    println!(
        "wave-parallel relaxation: fixpoint in {par_sweeps} sweeps, \
         eccentricity {eccentricity} from cluster 0 ({threads} threads == serial)"
    );
}

/// Relaxes hop-distance labels from cluster 0 to a fixpoint, sweeping
/// the contracted graph wave-by-wave through the color schedule: within
/// one wave no two updated clusters are adjacent, so every cluster reads
/// frozen neighbor labels and writes a slot that is provably its own —
/// shard-parallel with no locks or atomics. Returns the labels and the
/// number of sweeps to quiescence (both independent of `threads`: the
/// wave order is fixed and in-wave updates cannot observe each other).
fn relax_to_fixpoint(
    h: &ClusterGraph,
    schedule: &ColorSchedule,
    threads: usize,
) -> (Vec<u32>, usize) {
    let pool = WorkerPool::global(threads);
    let n = h.n_vertices();
    let mut labels = vec![u32::MAX; n];
    labels[0] = 0;
    let mut flags = vec![0u8; n];
    let mut sweeps = 0usize;
    loop {
        flags.fill(0);
        let lab = SendPtr::new(labels.as_mut_ptr());
        let flg = SendPtr::new(flags.as_mut_ptr());
        let waves = schedule.waves();
        run_waves(
            pool.as_deref(),
            threads,
            waves.offsets(),
            waves.items(),
            &|_wave, _base, slice| {
                for &v in slice {
                    // Safety: `v` appears in exactly one wave slice and
                    // its neighbors are all outside this wave (the
                    // schedule's asserted disjointness), so this is the
                    // only write to `labels[v]`/`flags[v]` in flight and
                    // the neighbor reads see pre-wave values.
                    unsafe {
                        let mut best = *lab.get().add(v);
                        for &u in h.neighbors(v) {
                            best = best.min((*lab.get().add(u)).saturating_add(1));
                        }
                        if best != *lab.get().add(v) {
                            *lab.get().add(v) = best;
                            *flg.get().add(v) = 1;
                        }
                    }
                }
            },
        );
        if flags.iter().all(|&f| f == 0) {
            return (labels, sweeps);
        }
        sweeps += 1;
    }
}
