//! Coloring after edge contraction — the flow-algorithm scenario (§1.1).
//!
//! Maximum-flow and network-decomposition algorithms repeatedly *contract*
//! connected machine sets; the contracted graph is exactly a cluster graph
//! over the original network, with clusters of wildly uneven shapes and
//! many parallel links between the same pair of clusters. The
//! `contraction` workload family builds such an instance — a grid network
//! contracted along seeded blobs — so the scenario is string-addressable
//! like every other workload: the spec below reproduces this exact
//! instance anywhere.
//!
//! ```sh
//! cargo run --release --example contracted_flow_network
//! ```

use cluster_coloring::prelude::*;

fn main() {
    // A 24x24 grid network — the canonical flow substrate — contracted
    // along random connected blobs of 4–12 machines, exactly what a
    // blocking-flow phase produces.
    let mut session = SessionBuilder::parse("contraction:side=24,lo=4,hi=12,seed=3141")
        .expect("valid workload spec")
        .build();
    let h = session.graph();
    println!(
        "contracted graph: {} clusters over {} machines, Δ = {}, dilation {}",
        h.n_vertices(),
        h.n_machines(),
        h.max_degree(),
        h.dilation()
    );
    let max_mult = h
        .h_edges()
        .map(|(u, v)| h.link_multiplicity(u, v))
        .max()
        .unwrap_or(0);
    println!("max parallel links per contracted edge: {max_mult} (Figure 1)");

    let out = session.run(17);
    let h = session.graph();
    assert!(out.run.coloring.is_total() && out.run.coloring.is_proper(h));
    let stats = coloring_stats(h, &out.run.coloring);
    println!(
        "colored {} clusters with {} colors in {} H-rounds / {} G-rounds",
        stats.n_vertices, stats.colors_used, out.run.report.h_rounds, out.run.report.g_rounds
    );
    println!(
        "bandwidth: max message {} bits within budget {} ({} oversized)",
        out.run.report.max_msg_bits, out.run.report.budget_bits, out.run.report.oversized_msgs
    );
    println!(
        "setup: generate {:.3}s, canonicalize {:.3}s, build {:.3}s (spec `{}`)",
        out.generate_secs, out.canonicalize_secs, out.graph_build_secs, out.spec_string
    );
}
