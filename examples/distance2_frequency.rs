//! Distance-2 coloring as frequency allocation (Corollary 1.3).
//!
//! Wireless access points that share a client must broadcast on different
//! frequencies — a *distance-2* coloring of the access-point graph `G`,
//! i.e. a vertex coloring of the square `G²` with `Δ₂ + 1` frequencies.
//! The paper colors `G²` as a virtual graph over `G`; per DESIGN.md we
//! color the explicit square with the cluster machinery — the `square`
//! workload family.
//!
//! ```sh
//! cargo run --release --example distance2_frequency
//! ```

use cluster_coloring::graphs::power::delta_two;
use cluster_coloring::prelude::*;

fn main() {
    // The physical access-point topology: a sparse random graph.
    let aps = gnp_spec(180, 0.025, 99);
    println!(
        "access-point graph: {} nodes, {} links, Δ = {}",
        aps.n,
        aps.edges.len(),
        aps.max_degree()
    );

    // Conflicts = distance ≤ 2 pairs: the square workload over the same
    // (n, p, seed) shares the base graph exactly.
    let mut session = Session::builder(WorkloadSpec::square_gnp(180, 0.025, 99)).build();
    let d2 = delta_two(&aps);
    println!(
        "conflict graph {}: Δ₂ = {} (need ≤ {} frequencies)",
        session.spec_string(),
        d2,
        d2 + 1
    );

    let out = session.run(11);
    assert!(out.run.coloring.is_total() && out.run.coloring.is_proper(session.graph()));

    let stats = coloring_stats(session.graph(), &out.run.coloring);
    println!(
        "allocated {} frequencies across {} access points in {} rounds",
        stats.colors_used, stats.n_vertices, out.run.report.h_rounds
    );

    // Spot-check the allocation: no two APs within distance 2 share one.
    let mut adj = vec![Vec::new(); aps.n];
    for &(u, v) in &aps.edges {
        adj[u].push(v);
        adj[v].push(u);
    }
    for u in 0..aps.n {
        for &v in &adj[u] {
            assert_ne!(
                out.run.coloring.get(u),
                out.run.coloring.get(v),
                "distance-1 clash"
            );
            for &w in &adj[v] {
                if w != u {
                    assert_ne!(
                        out.run.coloring.get(u),
                        out.run.coloring.get(w),
                        "distance-2 clash"
                    );
                }
            }
        }
    }
    println!("verified: no frequency reuse within distance 2");
}
