//! Quickstart: color a cluster graph through the Session API and inspect
//! the cost report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cluster_coloring::prelude::*;

fn main() {
    // A Reed-style mixture: dense planted blocks plus a sparse background,
    // laid out over star-shaped clusters of 4 machines with 2 parallel
    // links per conflict edge (Figure 1's multiplicity). The whole
    // instance is one addressable string.
    let mut session = SessionBuilder::parse(
        "mixture:c=4,k=24,anti=0.04,ext=2,bg=60,bgp=0.08,seed=2024,layout=star4,links=2",
    )
    .expect("valid workload spec")
    .build();

    let h = session.graph();
    println!(
        "workload: {}\nnetwork: {} vertices, {} machines, {} links, dilation d = {}",
        session.spec_string(),
        h.n_vertices(),
        h.n_machines(),
        h.comm().n_links(),
        h.dilation()
    );

    // Run the paper's algorithm under a 32·⌈log₂ n⌉-bit budget.
    let out = session.run(7);

    assert!(out.run.coloring.is_total() && out.run.coloring.is_proper(session.graph()));
    let stats = coloring_stats(session.graph(), &out.run.coloring);
    println!(
        "\ncolored all {} vertices with {} colors (Δ+1 = {})",
        stats.n_vertices,
        stats.colors_used,
        session.graph().max_degree() + 1
    );
    println!(
        "rounds: {} on H, {} on G; total bits {}; max message {} bits (budget {})",
        out.run.report.h_rounds,
        out.run.report.g_rounds,
        out.run.report.bits,
        out.run.report.max_msg_bits,
        out.run.report.budget_bits
    );
    println!(
        "pipeline: {} almost-cliques ({} cabals), {} sparse; fallback colored {}",
        out.run.stats.n_cliques,
        out.run.stats.n_cabals,
        out.run.stats.n_sparse,
        out.run.stats.fallback_colored
    );
    println!(
        "wall clock: build {:.3}s, color {:.3}s on {} thread(s) ({} cores detected)",
        out.build_secs, out.color_secs, out.threads, out.detected_cores
    );
    println!("\nper-phase cost:");
    for (phase, cost) in &out.run.report.phases {
        println!(
            "  {phase:<22} {:>6} H-rounds  {:>8} bits",
            cost.h_rounds, cost.bits
        );
    }

    // Compare with the planted ground truth.
    println!(
        "\nplanted blocks: {}",
        session
            .planted()
            .expect("mixture ground truth")
            .cliques
            .len()
    );

    // A second run on the same instance reuses the cached build.
    let again = session.run(8);
    assert!(again.cache_hit);
    println!(
        "second run reused the cached graph (build_secs = {})",
        again.build_secs
    );
}
