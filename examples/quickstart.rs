//! Quickstart: color a cluster graph and inspect the cost report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cluster_coloring::prelude::*;

fn main() {
    // A Reed-style mixture: dense planted blocks plus a sparse background.
    let cfg = MixtureConfig {
        n_cliques: 4,
        clique_size: 24,
        anti_edge_prob: 0.04,
        external_per_vertex: 2,
        sparse_n: 60,
        sparse_p: 0.08,
    };
    let (spec, info) = mixture_spec(&cfg, 2024);
    println!(
        "conflict graph: {} vertices, {} edges, Δ = {}",
        spec.n,
        spec.edges.len(),
        spec.max_degree()
    );

    // Lay it out over a communication network: every conflict-graph node
    // becomes a star-shaped cluster of 4 machines, each H-edge realized by
    // 2 parallel links (Figure 1's multiplicity).
    let h = realize(&spec, Layout::Star(4), 2, 2024);
    println!(
        "network: {} machines, {} links, dilation d = {}",
        h.n_machines(),
        h.comm().n_links(),
        h.dilation()
    );

    // Run the paper's algorithm under a 32·⌈log₂ n⌉-bit budget.
    let mut net = ClusterNet::with_log_budget(&h, 32);
    let params = Params::laptop(h.n_vertices());
    let run = color_cluster_graph(&mut net, &params, 7);

    assert!(run.coloring.is_total() && run.coloring.is_proper(&h));
    let stats = coloring_stats(&h, &run.coloring);
    println!(
        "\ncolored all {} vertices with {} colors (Δ+1 = {})",
        stats.n_vertices,
        stats.colors_used,
        h.max_degree() + 1
    );
    println!(
        "rounds: {} on H, {} on G; total bits {}; max message {} bits (budget {})",
        run.report.h_rounds,
        run.report.g_rounds,
        run.report.bits,
        run.report.max_msg_bits,
        run.report.budget_bits
    );
    println!(
        "pipeline: {} almost-cliques ({} cabals), {} sparse; fallback colored {}",
        run.stats.n_cliques, run.stats.n_cabals, run.stats.n_sparse, run.stats.fallback_colored
    );
    println!("\nper-phase cost:");
    for (phase, cost) in &run.report.phases {
        println!(
            "  {phase:<22} {:>6} H-rounds  {:>8} bits",
            cost.h_rounds, cost.bits
        );
    }

    // Compare with the planted ground truth.
    println!("\nplanted blocks: {}", info.cliques.len());
}
