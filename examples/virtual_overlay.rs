//! Virtual graphs (Appendix A): distance-2 coloring with *overlapping*
//! clusters — each node's support is its closed neighborhood on the
//! original network, and the simulation pays the measured congestion.
//!
//! The virtual instance is derived from a hand-built lattice rather than a
//! generator family, so there is no `WorkloadSpec` for it; this example
//! uses [`color_cluster_graph`], the documented compatibility entry for
//! custom-built [`ClusterGraph`]s (generator-backed runs go through
//! [`Session`] — see `quickstart.rs`).
//!
//! ```sh
//! cargo run --release --example virtual_overlay
//! ```

use cluster_coloring::cluster::VirtualGraph;
use cluster_coloring::prelude::*;

fn main() {
    // A sensor grid: 12x12 lattice, conflicts at distance ≤ 2.
    let side = 12usize;
    let n = side * side;
    let mut edges = Vec::new();
    for r in 0..side {
        for c in 0..side {
            let v = r * side + c;
            if c + 1 < side {
                edges.push((v, v + 1));
            }
            if r + 1 < side {
                edges.push((v, v + side));
            }
        }
    }
    let base = CommGraph::from_edges(n, &edges).expect("grid is valid");

    let vg = VirtualGraph::distance2(base);
    println!(
        "virtual graph: {} nodes, Δ₂ = {}, congestion c = {}, dilation d = {}",
        vg.n_vertices(),
        vg.max_degree(),
        vg.congestion(),
        vg.dilation()
    );
    println!(
        "support of a corner node: {:?}; of an interior node: {:?}",
        vg.support(0),
        vg.support(side + 1)
    );

    // Color the conflict structure; the Appendix A overhead multiplies
    // the network rounds by congestion × dilation.
    let (h, congestion) = vg.as_cluster_instance();
    let mut net = ClusterNet::with_log_budget(&h, 32);
    let run = color_cluster_graph(&mut net, &Params::laptop(h.n_vertices()), 77);
    assert!(run.coloring.is_total() && run.coloring.is_proper(&h));

    let stats = coloring_stats(&h, &run.coloring);
    println!(
        "\ncolored with {} frequencies (Δ₂ + 1 = {})",
        stats.colors_used,
        vg.max_degree() + 1
    );
    let overlay_g = run.report.g_rounds * congestion as u64 * vg.dilation() as u64;
    println!(
        "rounds: {} on H; {} on G as a plain cluster graph; {} on G paying the \
         Appendix A congestion x dilation overhead",
        run.report.h_rounds, run.report.g_rounds, overlay_g
    );
}
