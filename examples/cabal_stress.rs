//! Cabal stress test — the paper's hardest regime (§6–§7).
//!
//! Cabals are almost-cliques with almost no external edges and almost no
//! anti-edges: slack generation is useless, sampling matchings fail, and
//! put-aside vertices must be colored by donation. This example plants an
//! extreme cabal instance on the adversarial bottleneck layout (Figures
//! 2–3: path clusters whose inter-cluster links attach only at the ends)
//! and shows the pipeline still finishing within the bandwidth budget.
//!
//! ```sh
//! cargo run --release --example cabal_stress
//! ```

use cluster_coloring::prelude::*;

fn main() {
    // 4 cabals of 28 vertices, a 3-pair anti-matching each, only 6
    // external edges in total.
    let (spec, info) = cabal_spec(4, 28, 3, 6, 555);
    println!(
        "cabal instance: {} vertices, {} edges, Δ = {}",
        spec.n,
        spec.edges.len(),
        spec.max_degree()
    );

    // Adversarial layout: every cluster is a path of 6 machines, so all
    // cross-cluster coordination squeezes through end-attached links.
    let h = realize(&spec, Layout::Path(6), 1, 555);
    println!(
        "layout: path clusters, dilation d = {}, {} machines",
        h.dilation(),
        h.n_machines()
    );

    let mut net = ClusterNet::with_log_budget(&h, 32);
    let params = Params::laptop(h.n_vertices());
    let run = color_cluster_graph(&mut net, &params, 23);
    assert!(run.coloring.is_total() && run.coloring.is_proper(&h));

    println!("\npipeline report:");
    println!(
        "  almost-cliques: {} ({} cabals)",
        run.stats.n_cliques, run.stats.n_cabals
    );
    let c = &run.stats.cabal;
    println!(
        "  matching: {} sampled pairs, {} fingerprint escalations, {} fp pairs",
        c.sampled_pairs, c.fp_escalations, c.fp_pairs
    );
    println!(
        "  put-aside: computed = {}, donation = {:?}",
        c.putaside_ok, c.donation
    );
    println!(
        "  rounds: {} on H, {} on G; fallback colored {}",
        run.report.h_rounds, run.report.g_rounds, run.stats.fallback_colored
    );

    // Verify each planted anti-pair: monochromatic pairs are legal.
    let mut reused = 0usize;
    for k in &info.cliques {
        for pair in k.chunks(2).take(3) {
            if run.coloring.get(pair[0]) == run.coloring.get(pair[1]) {
                reused += 1;
            }
        }
    }
    println!("\nanti-pairs sharing a color (reuse slack realized): {reused}/12");
}
