//! Cabal stress test — the paper's hardest regime (§6–§7).
//!
//! Cabals are almost-cliques with almost no external edges and almost no
//! anti-edges: slack generation is useless, sampling matchings fail, and
//! put-aside vertices must be colored by donation. This example plants an
//! extreme cabal instance on path clusters (Figures 2–3: all cross-cluster
//! coordination squeezes through end-attached links) and shows the
//! pipeline still finishing within the bandwidth budget.
//!
//! ```sh
//! cargo run --release --example cabal_stress
//! ```

use cluster_coloring::prelude::*;

fn main() {
    // 4 cabals of 28 vertices, a 3-pair anti-matching each, only 6
    // external edges in total, every cluster a path of 6 machines.
    let spec = WorkloadSpec::cabal(4, 28, 3, 6, 555).with_layout(Layout::Path(6));
    let mut session = Session::builder(spec).build();
    println!(
        "workload: {}\nlayout: path clusters, dilation d = {}, {} machines, Δ = {}",
        session.spec_string(),
        session.graph().dilation(),
        session.graph().n_machines(),
        session.graph().max_degree()
    );

    let out = session.run(23);
    assert!(out.run.coloring.is_total() && out.run.coloring.is_proper(session.graph()));

    println!("\npipeline report:");
    println!(
        "  almost-cliques: {} ({} cabals)",
        out.run.stats.n_cliques, out.run.stats.n_cabals
    );
    let c = &out.run.stats.cabal;
    println!(
        "  matching: {} sampled pairs, {} fingerprint escalations, {} fp pairs",
        c.sampled_pairs, c.fp_escalations, c.fp_pairs
    );
    println!(
        "  put-aside: computed = {}, donation = {:?}",
        c.putaside_ok, c.donation
    );
    println!(
        "  rounds: {} on H, {} on G; fallback colored {}",
        out.run.report.h_rounds, out.run.report.g_rounds, out.run.stats.fallback_colored
    );

    // Verify each planted anti-pair: monochromatic pairs are legal.
    let info = session.planted().expect("cabal ground truth");
    let mut reused = 0usize;
    for k in &info.cliques {
        for pair in k.chunks(2).take(3) {
            if out.run.coloring.get(pair[0]) == out.run.coloring.get(pair[1]) {
                reused += 1;
            }
        }
    }
    println!("\nanti-pairs sharing a color (reuse slack realized): {reused}/12");
}
