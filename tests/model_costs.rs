//! Cost-model invariants: the meter's accounting must be internally
//! consistent and reflect the §3.2 round structure for any run.

use cluster_coloring::prelude::*;

fn run(h: &ClusterGraph, seed: u64, beta: u64) -> RunResult {
    let mut net = ClusterNet::with_log_budget(h, beta);
    color_cluster_graph(&mut net, &Params::laptop(h.n_vertices()), seed)
}

#[test]
fn phase_costs_sum_to_totals() {
    let (spec, _) = cabal_spec(2, 20, 2, 3, 51);
    let h = realize(&spec, Layout::Star(3), 1, 51);
    let r = run(&h, 1, 32).report;
    let h_sum: u64 = r.phases.values().map(|p| p.h_rounds).sum();
    let g_sum: u64 = r.phases.values().map(|p| p.g_rounds).sum();
    let bits_sum: u128 = r.phases.values().map(|p| p.bits).sum();
    assert_eq!(h_sum, r.h_rounds);
    assert_eq!(g_sum, r.g_rounds);
    assert_eq!(bits_sum, r.bits);
    let max_phase = r.phases.values().map(|p| p.max_msg_bits).max().unwrap();
    assert_eq!(max_phase, r.max_msg_bits);
}

#[test]
fn g_rounds_dominate_h_rounds() {
    for layout in [Layout::Singleton, Layout::Path(5), Layout::BinaryTree(7)] {
        let spec = gnp_spec(50, 0.1, 52);
        let h = realize(&spec, layout, 1, 52);
        let r = run(&h, 2, 32).report;
        assert!(
            r.g_rounds >= r.h_rounds,
            "G-rounds {} < H-rounds {} under {layout:?}",
            r.g_rounds,
            r.h_rounds
        );
        if h.dilation() == 1 {
            assert_eq!(r.g_rounds, r.h_rounds, "dilation 1 means G = H");
        }
    }
}

#[test]
fn smaller_budget_never_reduces_rounds() {
    let (spec, _) = cabal_spec(2, 18, 1, 2, 53);
    let h = realize(&spec, Layout::Singleton, 1, 53);
    let wide = run(&h, 3, 128).report;
    let tight = run(&h, 3, 2).report;
    assert!(
        tight.h_rounds >= wide.h_rounds,
        "tight budget {} rounds < wide budget {} rounds",
        tight.h_rounds,
        tight.h_rounds
    );
    // Identical logical work: same total bits moved.
    assert_eq!(tight.bits, wide.bits);
}

#[test]
fn budget_is_beta_times_log_n() {
    let spec = gnp_spec(30, 0.1, 54);
    let h = realize(&spec, Layout::Singleton, 1, 54);
    let net = ClusterNet::with_log_budget(&h, 16);
    let logn = (usize::BITS - h.n_machines().leading_zeros()) as u64;
    assert_eq!(net.meter.budget_bits(), 16 * logn);
}

#[test]
fn report_is_deterministic() {
    let (spec, _) = cabal_spec(2, 16, 1, 2, 55);
    let h = realize(&spec, Layout::Path(3), 2, 55);
    let a = run(&h, 9, 32).report;
    let b = run(&h, 9, 32).report;
    assert_eq!(a, b);
}

#[test]
fn greedy_costs_scale_with_n() {
    for n in [20usize, 40, 80] {
        let h = realize(&gnp_spec(n, 0.2, 56), Layout::Singleton, 1, 56);
        let mut net = ClusterNet::with_log_budget(&h, 32);
        let _ = greedy_coloring(&mut net);
        assert_eq!(net.meter.h_rounds(), 3 * n as u64, "n = {n}");
    }
}
