//! Property-based tests (proptest) over the cross-crate invariants.

use cluster_coloring::prelude::*;
use cluster_coloring::sketch::{decode_maxima, encode_maxima};
use proptest::prelude::*;

/// Arbitrary small conflict graphs: n in [2, 40], edge density in [0, .5].
fn arb_spec() -> impl Strategy<Value = HSpec> {
    (2usize..40, 0.0f64..0.5, any::<u64>()).prop_map(|(n, p, seed)| gnp_spec(n, p, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn driver_always_outputs_total_proper_coloring(spec in arb_spec(), seed in any::<u64>()) {
        let h = realize(&spec, Layout::Singleton, 1, 1);
        let mut net = ClusterNet::with_log_budget(&h, 32);
        let params = Params::laptop(h.n_vertices());
        let run = color_cluster_graph(&mut net, &params, seed);
        prop_assert!(run.coloring.is_total());
        prop_assert!(run.coloring.is_proper(&h));
        // Never more than Δ+1 distinct colors.
        let stats = coloring_stats(&h, &run.coloring);
        prop_assert!(stats.colors_used <= h.max_degree() + 1);
    }

    #[test]
    fn fingerprint_encoding_roundtrips(values in prop::collection::vec(-1i16..60, 1..200)) {
        let buf = encode_maxima(&values);
        let back = decode_maxima(&buf, values.len());
        prop_assert_eq!(back, values);
    }

    #[test]
    fn greedy_and_luby_agree_on_properness(spec in arb_spec()) {
        let h = realize(&spec, Layout::Singleton, 1, 2);
        let mut net1 = ClusterNet::with_log_budget(&h, 32);
        let g = greedy_coloring(&mut net1);
        prop_assert!(g.is_total() && g.is_proper(&h));

        let mut net2 = ClusterNet::with_log_budget(&h, 32);
        let seeds = SeedStream::new(5);
        let (l, stats) = luby_coloring(&mut net2, &seeds, 4000);
        prop_assert!(!stats.capped);
        prop_assert!(l.is_total() && l.is_proper(&h));
    }

    #[test]
    fn layouts_preserve_conflict_structure(
        spec in arb_spec(),
        m in 1usize..5,
        links in 1usize..4,
    ) {
        let h = realize(&spec, Layout::Path(m), links, 3);
        prop_assert_eq!(h.n_vertices(), spec.n);
        for &(u, v) in &spec.edges {
            prop_assert!(h.has_edge(u, v));
        }
        prop_assert_eq!(h.n_h_edges(), spec.edges.len());
        prop_assert_eq!(h.n_machines(), spec.n * m.max(1));
    }

    #[test]
    fn square_graph_contains_base_graph(spec in arb_spec()) {
        let sq = square_spec(&spec);
        for &(u, v) in &spec.edges {
            prop_assert!(sq.edges.binary_search(&(u, v)).is_ok());
        }
        prop_assert!(sq.max_degree() >= spec.max_degree());
    }

    #[test]
    fn fingerprint_estimates_are_monotone_reasonable(
        d in 1usize..400,
        seed in any::<u64>(),
    ) {
        let s = SeedStream::new(seed);
        let mut acc = Fingerprint::empty(512);
        for id in 0..d {
            acc.merge(&Fingerprint::sample(&mut s.rng_for(id as u64, 0), 512));
        }
        let est = acc.estimate();
        // Very loose sanity envelope: within a factor 4 either way.
        prop_assert!(est >= d as f64 / 4.0, "d={d} est={est}");
        prop_assert!(est <= d as f64 * 4.0 + 4.0, "d={d} est={est}");
    }
}
