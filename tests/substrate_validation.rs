//! Substrate validation: executed machine-level traces vs analytical
//! charges, and virtual-graph overlay invariants — across generated
//! topologies.

use cluster_coloring::cluster::{
    execute_broadcast, execute_full_round, execute_link_exchange, VirtualGraph,
};
use cluster_coloring::prelude::*;

#[test]
fn charges_dominate_execution_across_layouts() {
    let spec = gnp_spec(60, 0.1, 61);
    for layout in [
        Layout::Singleton,
        Layout::Path(4),
        Layout::Star(5),
        Layout::BinaryTree(7),
    ] {
        for links in [1usize, 3] {
            let h = realize(&spec, layout, links, 61);
            for msg in [4u64, 16, 64] {
                let exec = execute_full_round(&h, msg);
                let mut net = ClusterNet::new(&h, 64);
                net.charge_full_rounds(1, msg);
                let r = net.meter.report();
                assert!(
                    r.g_rounds >= exec.rounds,
                    "{layout:?}/{links}/{msg}: charged {} < executed {}",
                    r.g_rounds,
                    exec.rounds
                );
                assert!(
                    r.bits >= exec.total_bits,
                    "{layout:?}/{links}/{msg}: bits {} < executed {}",
                    r.bits,
                    exec.total_bits
                );
            }
        }
    }
}

#[test]
fn executed_broadcast_rounds_equal_dilation() {
    let spec = gnp_spec(20, 0.2, 62);
    for m in [2usize, 5, 9] {
        let h = realize(&spec, Layout::Path(m), 1, 62);
        let t = execute_broadcast(&h, 8);
        assert_eq!(t.rounds as usize, h.dilation(), "path length {m}");
    }
}

#[test]
fn link_exchange_counts_parallel_links() {
    let spec = HSpec::new(2, vec![(0, 1)]);
    let h = realize(&spec, Layout::Star(6), 4, 63);
    let t = execute_link_exchange(&h, 8);
    // 4 links requested; collisions can dedup a few, but multiplicity > 1
    // must multiply the per-link-pair traffic.
    let mult = h.link_multiplicity(0, 1) as u64;
    assert!(mult >= 2);
    assert_eq!(t.messages, 2 * mult);
}

#[test]
fn virtual_distance2_matches_square_conflicts() {
    let spec = gnp_spec(70, 0.05, 64);
    let base = CommGraph::from_edges(70, &spec.edges).unwrap();
    let vg = VirtualGraph::distance2(base);
    let sq = square_spec(&spec);
    // Same edge set.
    let mut vg_edges = Vec::new();
    for v in 0..vg.n_vertices() {
        for &u in vg.neighbors(v) {
            if u > v {
                vg_edges.push((v, u));
            }
        }
    }
    vg_edges.sort_unstable();
    assert_eq!(vg_edges, sq.edges);
}

#[test]
fn virtual_overlay_coloring_is_proper_with_congestion_accounting() {
    let spec = gnp_spec(60, 0.05, 65);
    let base = CommGraph::from_edges(60, &spec.edges).unwrap();
    let vg = VirtualGraph::distance2(base);
    let (h, congestion) = vg.as_cluster_instance();
    assert!(congestion >= 1);
    let mut net = ClusterNet::with_log_budget(&h, 32);
    let run = color_cluster_graph(&mut net, &Params::laptop(h.n_vertices()), 66);
    assert!(run.coloring.is_total() && run.coloring.is_proper(&h));
    // Appendix A: the simulated cost is G-rounds × congestion × dilation.
    let overlay_cost = run.report.g_rounds * congestion as u64 * vg.dilation() as u64;
    assert!(overlay_cost >= run.report.g_rounds);
}

#[test]
fn overlay_charge_adapter_scales_with_congestion() {
    let base = CommGraph::complete(8);
    let vg = VirtualGraph::distance2(base);
    // Complete graph: every link {u,w} sits in the stars of u and w.
    assert_eq!(vg.congestion(), 2);
    let (h, _) = vg.as_cluster_instance();
    let mut net = ClusterNet::with_log_budget(&h, 32);
    let h0 = net.meter.h_rounds();
    vg.charge_overlay_round(&mut net, 8);
    assert_eq!(net.meter.h_rounds() - h0, 2 * 2 + 1);
}
