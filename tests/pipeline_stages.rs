//! Stage-level integration: the paper's per-lemma guarantees checked
//! end-to-end on planted instances.

use cluster_coloring::core::matching::{color_anti_matching, fingerprint_matching};
use cluster_coloring::core::palette_query::CliquePalette;
use cluster_coloring::core::putaside::{check_putaside, compute_putaside_sets};
use cluster_coloring::decomp::{classify_cabals, degree_profile};
use cluster_coloring::prelude::*;

/// Proposition 4.3 / Definition 4.2 on a noisy mixture, distributed ACD.
#[test]
fn distributed_acd_is_valid_on_noisy_mixture() {
    let cfg = MixtureConfig {
        n_cliques: 3,
        clique_size: 26,
        anti_edge_prob: 0.03,
        external_per_vertex: 1,
        sparse_n: 40,
        sparse_p: 0.08,
    };
    let (spec, info) = mixture_spec(&cfg, 31);
    let h = realize(&spec, Layout::Singleton, 1, 31);
    let mut net = ClusterNet::with_log_budget(&h, 32);
    let acd = compute_acd(&mut net, &AcdParams::default(), &SeedStream::new(32));
    let q = acd.validate(&h);
    assert!(q.is_valid(), "{q:?}");
    assert!(
        q.n_cliques >= 2,
        "found {} of 3 planted blocks",
        q.n_cliques
    );
    // Planted sparse vertices must not be swallowed into cliques.
    for &v in &info.sparse {
        assert!(acd.is_sparse(v), "background vertex {v} classified dense");
    }
}

/// Lemma 5.7 on a realized cluster layout: external degrees estimated
/// within a constant factor.
#[test]
fn degree_profile_tracks_exact_values() {
    let cfg = MixtureConfig {
        n_cliques: 2,
        clique_size: 24,
        anti_edge_prob: 0.0,
        external_per_vertex: 3,
        sparse_n: 0,
        sparse_p: 0.0,
    };
    let (spec, _) = mixture_spec(&cfg, 33);
    let h = realize(&spec, Layout::Star(3), 1, 33);
    let acd = acd_oracle(&h, 0.25);
    assert_eq!(acd.n_cliques(), 2);
    let mut net = ClusterNet::with_log_budget(&h, 32);
    let params = Params::laptop(h.n_vertices());
    let profile = degree_profile(&mut net, &acd, &params.counting, &SeedStream::new(34));
    for v in 0..h.n_vertices() {
        let exact = profile.e_exact[v] as f64;
        let est = profile.e_est[v];
        if exact >= 2.0 {
            assert!(
                est > exact / 3.0 && est < exact * 3.0,
                "v={v}: e={exact} ẽ={est}"
            );
        }
    }
}

/// §6 pipeline: fingerprint matching finds anti-edges on a realized cabal
/// and coloring them yields exactly the reuse slack the cabal needs.
#[test]
fn fingerprint_matching_supplies_reuse_slack() {
    let (spec, info) = cabal_spec(1, 30, 5, 0, 35);
    let h = realize(&spec, Layout::Singleton, 1, 35);
    let mut net = ClusterNet::with_log_budget(&h, 32);
    let seeds = SeedStream::new(36);
    let clique = &info.cliques[0];
    let pairs = fingerprint_matching(&mut net, &seeds, 0, clique, 300);
    assert!(pairs.len() >= 2, "found {} pairs", pairs.len());
    let mut coloring = Coloring::new(h.n_vertices(), h.max_degree() + 1);
    let left = color_anti_matching(&mut net, &mut coloring, &seeds, 1, &pairs, 0, 30);
    assert!(left.is_empty());
    // M_K via the clique palette equals the number of pairs.
    let pal = CliquePalette::build(&mut net, &coloring, clique);
    assert_eq!(pal.repeated_colors(), pairs.len());
}

/// Lemma 4.18 on a realized multi-cabal instance.
#[test]
fn putaside_sets_satisfy_lemma_4_18() {
    let (spec, info) = cabal_spec(4, 24, 2, 8, 37);
    let h = realize(&spec, Layout::Singleton, 1, 37);
    let mut net = ClusterNet::with_log_budget(&h, 32);
    let coloring = Coloring::new(h.n_vertices(), h.max_degree() + 1);
    let targets = vec![4usize; 4];
    let sets = compute_putaside_sets(
        &mut net,
        &coloring,
        &SeedStream::new(38),
        0,
        &info.cliques,
        &targets,
        8,
    )
    .expect("put-aside sets must exist on sparse cross edges");
    let chk = check_putaside(&net, &info.cliques, &sets, &targets);
    assert!(chk.sizes_ok, "{chk:?}");
    assert!(chk.independent, "{chk:?}");
    assert!(chk.max_exposure < 0.6, "{chk:?}");
}

/// Slack generation (Proposition 4.5 shape): sparse vertices gain real
/// slack, dense blocks stay mostly uncolored.
#[test]
fn slackgen_postconditions_on_mixture() {
    use cluster_coloring::core::slackgen::slack_generation;
    let cfg = MixtureConfig {
        n_cliques: 2,
        clique_size: 30,
        anti_edge_prob: 0.02,
        external_per_vertex: 2,
        sparse_n: 80,
        sparse_p: 0.25,
    };
    let (spec, info) = mixture_spec(&cfg, 39);
    let h = realize(&spec, Layout::Singleton, 1, 39);
    let mut net = ClusterNet::with_log_budget(&h, 32);
    let mut coloring = Coloring::new(h.n_vertices(), h.max_degree() + 1);
    let mut params = Params::laptop(h.n_vertices());
    params.slack_activation = 0.3;
    let colored = slack_generation(
        &mut net,
        &mut coloring,
        &SeedStream::new(40),
        0,
        &vec![true; h.n_vertices()],
        &params,
    );
    assert!(coloring.is_proper(&h));
    assert!(colored > 0);
    // Property 3 shape: planted blocks keep most members uncolored.
    for k in &info.cliques {
        let colored_in_k = k.iter().filter(|&&v| coloring.is_colored(v)).count();
        assert!(
            colored_in_k * 2 <= k.len(),
            "block lost {} of {} members",
            colored_in_k,
            k.len()
        );
    }
    // Some sparse vertex sees reuse slack.
    let reuse: usize = info
        .sparse
        .iter()
        .map(|&v| coloring.reuse_slack(&h, v))
        .sum();
    assert!(reuse > 0, "no reuse slack generated across the sparse part");
}

/// Cabal classification reacts to external degree (Equation 2 shape).
#[test]
fn cabal_classification_tracks_external_degree() {
    // Two planted blocks: one isolated (cabal), one heavily cross-linked.
    let (spec_iso, info_iso) = cabal_spec(2, 20, 1, 0, 41);
    let h = realize(&spec_iso, Layout::Singleton, 1, 41);
    let acd = acd_oracle(&h, 0.25);
    assert_eq!(acd.n_cliques(), 2);
    let mut net = ClusterNet::with_log_budget(&h, 32);
    let params = Params::laptop(h.n_vertices());
    let profile = degree_profile(&mut net, &acd, &params.counting, &SeedStream::new(42));
    let info = classify_cabals(&profile, h.max_degree(), 2.0, params.rho, 0.25);
    assert_eq!(info.n_cabals(), 2, "isolated blocks must be cabals");
    let _ = info_iso;
}
