//! End-to-end integration: the full pipeline across generators, layouts
//! and seeds, with bandwidth-budget and determinism checks.

use cluster_coloring::prelude::*;

fn run_on(h: &ClusterGraph, seed: u64, beta: u64) -> RunResult {
    let mut net = ClusterNet::with_log_budget(h, beta);
    let params = Params::laptop(h.n_vertices());
    let run = color_cluster_graph(&mut net, &params, seed);
    assert!(
        run.coloring.is_total(),
        "not total: {:?}",
        run.coloring.uncolored()
    );
    assert!(
        run.coloring.is_proper(h),
        "conflicts: {:?}",
        run.coloring.conflicts(h)
    );
    assert_eq!(run.coloring.q(), h.max_degree() + 1, "exactly Δ+1 colors");
    run
}

#[test]
fn gnp_across_layouts_and_seeds() {
    for (li, layout) in [
        Layout::Singleton,
        Layout::Path(3),
        Layout::Star(4),
        Layout::BinaryTree(5),
    ]
    .into_iter()
    .enumerate()
    {
        for seed in [1u64, 2] {
            let spec = gnp_spec(90, 0.07, seed);
            let h = realize(&spec, layout, 1 + li % 2, seed);
            run_on(&h, seed * 31 + li as u64, 32);
        }
    }
}

#[test]
fn planted_mixtures_high_degree_path() {
    for seed in [3u64, 4, 5] {
        let cfg = MixtureConfig {
            n_cliques: 3,
            clique_size: 22,
            anti_edge_prob: 0.04,
            external_per_vertex: 2,
            sparse_n: 30,
            sparse_p: 0.12,
        };
        let (spec, _) = mixture_spec(&cfg, seed);
        let h = realize(&spec, Layout::Singleton, 1, seed);
        let run = run_on(&h, seed, 32);
        assert!(matches!(
            run.stats.path,
            cluster_coloring::core::driver::AlgoPath::HighDegree
        ));
    }
}

#[test]
fn cabal_instances_all_layouts() {
    for (seed, layout) in [
        (6u64, Layout::Singleton),
        (7, Layout::Star(3)),
        (8, Layout::Path(4)),
    ] {
        let (spec, _) = cabal_spec(3, 22, 2, 4, seed);
        let h = realize(&spec, layout, 1, seed);
        let run = run_on(&h, seed, 32);
        assert!(run.stats.n_cabals >= 1, "{:?}", run.stats);
    }
}

#[test]
fn bottleneck_layout_stays_within_budget() {
    let h = bottleneck_instance(12, 8);
    let run = run_on(&h, 9, 32);
    // Aggregation-only messages: within the O(log n) budget throughout.
    assert!(
        run.report.within_budget(),
        "oversized messages: {} (max {} bits, budget {})",
        run.report.oversized_msgs,
        run.report.max_msg_bits,
        run.report.budget_bits
    );
}

#[test]
fn distance2_reduction_is_correct() {
    let base = gnp_spec(100, 0.03, 10);
    let sq = square_spec(&base);
    let h = realize(&sq, Layout::Singleton, 1, 10);
    let run = run_on(&h, 10, 32);
    // Δ₂ + 1 colors bound (the coloring uses H's Δ+1 = Δ₂+1).
    let stats = coloring_stats(&h, &run.coloring);
    assert!(stats.colors_used <= sq.max_degree() + 1);
}

#[test]
fn deterministic_across_identical_runs() {
    let (spec, _) = cabal_spec(2, 18, 2, 3, 11);
    let h = realize(&spec, Layout::Star(3), 2, 11);
    let a = run_on(&h, 77, 32);
    let b = run_on(&h, 77, 32);
    assert_eq!(a.coloring, b.coloring);
    assert_eq!(a.report, b.report);
    let c = run_on(&h, 78, 32);
    // A different seed almost surely yields a different transcript.
    assert!(c.coloring != a.coloring || c.report != a.report);
}

#[test]
fn dilation_multiplies_g_rounds_not_h_rounds() {
    let spec = gnp_spec(40, 0.12, 12);
    let short = realize(&spec, Layout::Path(2), 1, 12);
    let long = realize(&spec, Layout::Path(10), 1, 12);
    let a = run_on(&short, 13, 32);
    let b = run_on(&long, 13, 32);
    let ratio_g = b.report.g_rounds as f64 / a.report.g_rounds.max(1) as f64;
    let ratio_h = b.report.h_rounds as f64 / a.report.h_rounds.max(1) as f64;
    assert!(
        ratio_g > 1.5 * ratio_h,
        "G-round ratio {ratio_g} should outgrow H-round ratio {ratio_h}"
    );
}

#[test]
fn tight_budget_forces_pipelining_but_still_colors() {
    let (spec, _) = cabal_spec(2, 20, 2, 3, 14);
    let h = realize(&spec, Layout::Singleton, 1, 14);
    // β = 1: a single ⌈log n⌉ bits per link per round.
    let run = run_on(&h, 15, 1);
    // Fingerprint messages exceed one log-n word; the meter must show
    // pipelining rather than silent cheating.
    assert!(run.report.oversized_msgs > 0);
    assert!(run.report.h_rounds > 0);
}

#[test]
fn fallback_stays_small_on_sane_instances() {
    let mut total_fallback = 0usize;
    let mut total_n = 0usize;
    for seed in 20u64..25 {
        let spec = gnp_spec(120, 0.06, seed);
        let h = realize(&spec, Layout::Singleton, 1, seed);
        let run = run_on(&h, seed, 32);
        total_fallback += run.stats.fallback_colored;
        total_n += h.n_vertices();
    }
    assert!(
        total_fallback * 10 <= total_n,
        "fallback colored {total_fallback} of {total_n}"
    );
}
