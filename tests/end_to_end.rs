//! End-to-end integration: the full pipeline across generators, layouts
//! and seeds, with bandwidth-budget and determinism checks — all driven
//! through the unified [`Session`]/[`WorkloadSpec`] API.

use cluster_coloring::prelude::*;

/// Builds a session for `spec` with budget factor `beta`, runs `seed`,
/// and asserts the universal postconditions (total, proper, exactly Δ+1
/// colors).
fn run_spec(spec: WorkloadSpec, seed: u64, beta: u64) -> (Session, RunOutcome) {
    let mut session = SessionBuilder::new(spec).log_budget(beta).build();
    let out = session.run(seed);
    assert!(
        out.run.coloring.is_total(),
        "not total: {:?}",
        out.run.coloring.uncolored()
    );
    assert!(
        out.run.coloring.is_proper(session.graph()),
        "conflicts: {:?}",
        out.run.coloring.conflicts(session.graph())
    );
    assert_eq!(
        out.run.coloring.q(),
        session.graph().max_degree() + 1,
        "exactly Δ+1 colors"
    );
    (session, out)
}

#[test]
fn gnp_across_layouts_and_seeds() {
    for (li, layout) in [
        Layout::Singleton,
        Layout::Path(3),
        Layout::Star(4),
        Layout::BinaryTree(5),
    ]
    .into_iter()
    .enumerate()
    {
        for seed in [1u64, 2] {
            let spec = WorkloadSpec::gnp(90, 0.07, seed)
                .with_layout(layout)
                .with_links(1 + li % 2);
            run_spec(spec, seed * 31 + li as u64, 32);
        }
    }
}

#[test]
fn planted_mixtures_high_degree_path() {
    for seed in [3u64, 4, 5] {
        let cfg = MixtureConfig {
            n_cliques: 3,
            clique_size: 22,
            anti_edge_prob: 0.04,
            external_per_vertex: 2,
            sparse_n: 30,
            sparse_p: 0.12,
        };
        let (_, out) = run_spec(WorkloadSpec::mixture(&cfg, seed), seed, 32);
        assert!(matches!(
            out.run.stats.path,
            cluster_coloring::core::driver::AlgoPath::HighDegree
        ));
    }
}

#[test]
fn cabal_instances_all_layouts() {
    for (seed, layout) in [
        (6u64, Layout::Singleton),
        (7, Layout::Star(3)),
        (8, Layout::Path(4)),
    ] {
        let spec = WorkloadSpec::cabal(3, 22, 2, 4, seed).with_layout(layout);
        let (_, out) = run_spec(spec, seed, 32);
        assert!(out.run.stats.n_cabals >= 1, "{:?}", out.run.stats);
    }
}

#[test]
fn bottleneck_layout_stays_within_budget() {
    let (_, out) = run_spec(WorkloadSpec::bottleneck(12, 8), 9, 32);
    // Aggregation-only messages: within the O(log n) budget throughout.
    assert!(
        out.run.report.within_budget(),
        "oversized messages: {} (max {} bits, budget {})",
        out.run.report.oversized_msgs,
        out.run.report.max_msg_bits,
        out.run.report.budget_bits
    );
}

#[test]
fn distance2_reduction_is_correct() {
    let (session, out) = run_spec(WorkloadSpec::square_gnp(100, 0.03, 10), 10, 32);
    // Δ₂ + 1 colors bound (the coloring uses H's Δ+1 = Δ₂+1).
    let stats = coloring_stats(session.graph(), &out.run.coloring);
    assert!(stats.colors_used <= session.graph().max_degree() + 1);
}

#[test]
fn deterministic_across_identical_runs() {
    let spec = WorkloadSpec::cabal(2, 18, 2, 3, 11)
        .with_layout(Layout::Star(3))
        .with_links(2);
    let (mut session, a) = run_spec(spec, 77, 32);
    // Same session, same seed: cached graph, identical transcript.
    let b = session.run(77);
    assert!(b.cache_hit);
    assert_eq!(a.run.coloring, b.run.coloring);
    assert_eq!(a.run.report, b.run.report);
    // A fresh session rebuilt from the printed spec string reproduces it.
    let respec: WorkloadSpec = a.spec_string.parse().expect("spec strings round-trip");
    let (_, c) = run_spec(respec, 77, 32);
    assert_eq!(a.run.coloring, c.run.coloring);
    assert_eq!(a.run.report, c.run.report);
    // A different seed almost surely yields a different transcript.
    let d = session.run(78);
    assert!(d.run.coloring != a.run.coloring || d.run.report != a.run.report);
}

#[test]
fn dilation_multiplies_g_rounds_not_h_rounds() {
    let base = WorkloadSpec::gnp(40, 0.12, 12);
    let (_, a) = run_spec(base.with_layout(Layout::Path(2)), 13, 32);
    let (_, b) = run_spec(base.with_layout(Layout::Path(10)), 13, 32);
    let ratio_g = b.run.report.g_rounds as f64 / a.run.report.g_rounds.max(1) as f64;
    let ratio_h = b.run.report.h_rounds as f64 / a.run.report.h_rounds.max(1) as f64;
    assert!(
        ratio_g > 1.5 * ratio_h,
        "G-round ratio {ratio_g} should outgrow H-round ratio {ratio_h}"
    );
}

#[test]
fn tight_budget_forces_pipelining_but_still_colors() {
    // β = 1: a single ⌈log n⌉ bits per link per round.
    let (_, out) = run_spec(WorkloadSpec::cabal(2, 20, 2, 3, 14), 15, 1);
    // Fingerprint messages exceed one log-n word; the meter must show
    // pipelining rather than silent cheating.
    assert!(out.run.report.oversized_msgs > 0);
    assert!(out.run.report.h_rounds > 0);
}

#[test]
fn fallback_stays_small_on_sane_instances() {
    let mut total_fallback = 0usize;
    let mut total_n = 0usize;
    for seed in 20u64..25 {
        let (session, out) = run_spec(WorkloadSpec::gnp(120, 0.06, seed), seed, 32);
        total_fallback += out.run.stats.fallback_colored;
        total_n += session.graph().n_vertices();
    }
    assert!(
        total_fallback * 10 <= total_n,
        "fallback colored {total_fallback} of {total_n}"
    );
}

#[test]
fn thread_count_is_a_pure_wall_clock_knob() {
    // The same (spec, seed) at 1 thread and at max threads: identical
    // coloring and identical meter totals.
    let spec = WorkloadSpec::gnp(150, 0.08, 16).with_layout(Layout::Star(3));
    let mut serial = SessionBuilder::new(spec)
        .parallel(ParallelConfig::serial())
        .build();
    let mut parallel = SessionBuilder::new(spec)
        .parallel(ParallelConfig::max_parallel())
        .build();
    let a = serial.run(17);
    let b = parallel.run(17);
    assert_eq!(a.run.coloring, b.run.coloring);
    assert_eq!(a.run.report, b.run.report);
    assert_eq!(b.threads, ParallelConfig::max_parallel().threads());
}
