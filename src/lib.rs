//! # cluster-coloring
//!
//! A full Rust implementation of **"Decentralized Distributed Graph
//! Coloring: Cluster Graphs"** (Flin, Halldórsson, Nolin — PODC 2025,
//! arXiv:2405.07725): sub-logarithmic `(Δ+1)`-coloring of cluster graphs,
//! together with every substrate the algorithm stands on — a metered
//! communication-network simulator, the cluster-graph aggregation layer,
//! fingerprint sketches, pseudo-random tool kits, the almost-clique
//! decomposition, baselines and workload generators.
//!
//! A *cluster graph* `H` arises by contracting disjoint connected sets of
//! machines of a communication network `G` into single conflict-graph
//! nodes; links carry `O(log n)` bits per round, so a node cannot even
//! learn its own palette — yet the paper colors `H` with `Δ+1` colors in
//! `O(d · log* n)` rounds for `Δ ≥ polylog(n)` (Theorem 1.2) and
//! `O(d · log⁷ log n)` in general (Theorem 1.1).
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`net`] | machines, links, round/bandwidth metering, seeded RNG |
//! | [`cluster`] | cluster graphs, support trees, aggregation (Lemmas 3.2–3.3, 4.4) |
//! | [`sketch`] | fingerprints (§5): estimation, compression, counting |
//! | [`pseudo`] | k-wise/min-wise hashing, representative sets (App. C) |
//! | [`decomp`] | sparsity, buddy predicate, almost-clique decomposition (§5.4) |
//! | [`core`] | the coloring algorithm (§4–§9) and its driver |
//! | [`baselines`] | greedy, Johansson, naive-CONGEST cost model |
//! | [`graphs`] | generators: G(n,p), planted cliques/cabals, layouts, squares |
//!
//! ## Quickstart
//!
//! Every instance is addressed by a [`graphs::WorkloadSpec`] string and
//! every run goes through a [`core::Session`]:
//!
//! ```
//! use cluster_coloring::prelude::*;
//!
//! // 3 planted 16-cliques with light noise, laid out over star-shaped
//! // clusters of 4 machines, 2 parallel links per conflict edge.
//! let mut session = SessionBuilder::parse(
//!     "mixture:c=3,k=16,anti=0.04,ext=1,bg=20,bgp=0.1,seed=7,layout=star4,links=2",
//! )
//! .unwrap()
//! .build();
//!
//! // Color it with the paper's algorithm under a 32·log n bit budget.
//! let out = session.run(42);
//!
//! assert!(out.run.coloring.is_total());
//! assert!(out.run.coloring.is_proper(session.graph()));
//! println!(
//!     "colored {} ({} threads) in {} cluster rounds ({} network rounds)",
//!     out.spec_string,
//!     out.threads,
//!     out.run.report.h_rounds,
//!     out.run.report.g_rounds,
//! );
//! ```

pub use cgc_baselines as baselines;
pub use cgc_cluster as cluster;
pub use cgc_core as core;
pub use cgc_decomp as decomp;
pub use cgc_graphs as graphs;
pub use cgc_net as net;
pub use cgc_pseudo as pseudo;
pub use cgc_sketch as sketch;

/// One-stop imports for applications.
pub mod prelude {
    pub use cgc_baselines::{greedy_coloring, luby_coloring, naive_simulation_cost};
    pub use cgc_cluster::{
        available_threads, run_waves, ClusterGraph, ClusterNet, ParallelConfig, VertexId,
        WaveSchedule, WorkerPool,
    };
    pub use cgc_core::{
        color_cluster_graph, coloring_stats, ColorSchedule, Coloring, Params, ParamsProfile,
        RunOutcome, RunResult, Session, SessionBuilder,
    };
    pub use cgc_decomp::{acd_oracle, compute_acd, AcdParams};
    pub use cgc_graphs::{
        bottleneck_instance, cabal_spec, gnp_spec, mixture_spec, realize, square_spec, HSpec,
        Layout, MixtureConfig, WorkloadFamily, WorkloadSpec,
    };
    pub use cgc_net::{CommGraph, CostMeter, CostReport, SeedStream};
    pub use cgc_sketch::{approx_count_neighbors, CountingParams, Fingerprint};
}
